//! Sparse vectors and column-major matrices.

use std::fmt;

/// A sparse vector stored as parallel `(index, value)` arrays.
///
/// Indices are kept sorted and unique by the constructors; values with
/// magnitude below [`SparseVec::DROP_TOL`] are dropped.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec {
    idx: Vec<usize>,
    val: Vec<f64>,
}

impl SparseVec {
    /// Magnitude below which entries are treated as exact zeros.
    pub const DROP_TOL: f64 = 1e-13;

    /// Creates an empty sparse vector.
    pub fn new() -> Self {
        SparseVec::default()
    }

    /// Builds from entries; duplicates are summed, indices sorted, and tiny
    /// values dropped.
    pub fn from_entries<I: IntoIterator<Item = (usize, f64)>>(entries: I) -> Self {
        let mut pairs: Vec<(usize, f64)> = entries.into_iter().collect();
        pairs.sort_by_key(|&(i, _)| i);
        let mut v = SparseVec::new();
        for (i, x) in pairs {
            if let Some(last) = v.idx.last() {
                if *last == i {
                    *v.val.last_mut().expect("parallel arrays") += x;
                    continue;
                }
            }
            v.idx.push(i);
            v.val.push(x);
        }
        v.compact();
        v
    }

    /// Gathers the nonzeros of a dense slice.
    pub fn from_dense(dense: &[f64]) -> Self {
        let mut v = SparseVec::new();
        for (i, &x) in dense.iter().enumerate() {
            if x.abs() > Self::DROP_TOL {
                v.idx.push(i);
                v.val.push(x);
            }
        }
        v
    }

    fn compact(&mut self) {
        let mut w = 0;
        for r in 0..self.idx.len() {
            if self.val[r].abs() > Self::DROP_TOL {
                self.idx[w] = self.idx[r];
                self.val[w] = self.val[r];
                w += 1;
            }
        }
        self.idx.truncate(w);
        self.val.truncate(w);
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Whether the vector has no nonzeros.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Iterates over `(index, value)` pairs in ascending index order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.idx.iter().copied().zip(self.val.iter().copied())
    }

    /// Value at `i` (zero when not stored).
    pub fn get(&self, i: usize) -> f64 {
        match self.idx.binary_search(&i) {
            Ok(k) => self.val[k],
            Err(_) => 0.0,
        }
    }

    /// Scatters into a dense buffer (which must be large enough).
    pub fn scatter_into(&self, dense: &mut [f64]) {
        for (i, x) in self.iter() {
            dense[i] = x;
        }
    }

    /// Dot product with a dense vector.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        self.iter().map(|(i, x)| x * dense[i]).sum()
    }
}

impl FromIterator<(usize, f64)> for SparseVec {
    fn from_iter<T: IntoIterator<Item = (usize, f64)>>(iter: T) -> Self {
        SparseVec::from_entries(iter)
    }
}

/// A column-major sparse matrix: each column is a [`SparseVec`] of row
/// entries. This is the natural layout for the simplex method, which
/// repeatedly asks for individual constraint columns.
#[derive(Debug, Clone, Default)]
pub struct ColMatrix {
    nrows: usize,
    cols: Vec<SparseVec>,
}

impl ColMatrix {
    /// Creates an empty matrix with a fixed row count.
    pub fn new(nrows: usize) -> Self {
        ColMatrix { nrows, cols: Vec::new() }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.cols.iter().map(SparseVec::nnz).sum()
    }

    /// Appends a column, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if any row index in the column is out of range.
    pub fn push_col(&mut self, col: SparseVec) -> usize {
        if let Some(&max) = col.idx.last() {
            assert!(max < self.nrows, "row index {max} out of range ({})", self.nrows);
        }
        self.cols.push(col);
        self.cols.len() - 1
    }

    /// Borrow of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> &SparseVec {
        &self.cols[j]
    }

    /// `y += A[:, j] * x`.
    pub fn axpy_col(&self, j: usize, x: f64, y: &mut [f64]) {
        for (i, a) in self.cols[j].iter() {
            y[i] += a * x;
        }
    }
}

impl fmt::Display for SparseVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, (i, x)) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}: {x}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_dedupe_and_sort() {
        let v = SparseVec::from_entries([(3, 1.0), (1, 2.0), (3, 4.0), (2, 0.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(1), 2.0);
        assert_eq!(v.get(3), 5.0);
        assert_eq!(v.get(2), 0.0);
        let indices: Vec<usize> = v.iter().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![1, 3]);
    }

    #[test]
    fn cancellation_drops_entries() {
        let v = SparseVec::from_entries([(0, 1.0), (0, -1.0)]);
        assert!(v.is_empty());
    }

    #[test]
    fn dense_roundtrip() {
        let dense = [0.0, 3.0, 0.0, -2.0];
        let v = SparseVec::from_dense(&dense);
        assert_eq!(v.nnz(), 2);
        let mut back = [0.0; 4];
        v.scatter_into(&mut back);
        assert_eq!(back, dense);
        assert_eq!(v.dot_dense(&[1.0, 1.0, 1.0, 1.0]), 1.0);
    }

    #[test]
    fn matrix_columns() {
        let mut m = ColMatrix::new(3);
        let j0 = m.push_col(SparseVec::from_entries([(0, 1.0), (2, -1.0)]));
        let j1 = m.push_col(SparseVec::from_entries([(1, 2.0)]));
        assert_eq!((j0, j1), (0, 1));
        assert_eq!(m.nnz(), 3);
        let mut y = vec![0.0; 3];
        m.axpy_col(0, 2.0, &mut y);
        m.axpy_col(1, 1.0, &mut y);
        assert_eq!(y, vec![2.0, 2.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut m = ColMatrix::new(2);
        m.push_col(SparseVec::from_entries([(5, 1.0)]));
    }
}
