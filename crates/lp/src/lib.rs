//! A self-contained linear-programming solver.
//!
//! This crate is the substrate that stands in for the Gurobi Optimizer in
//! the paper's *LP-based Layout Optimization* stage (§III-E). It implements
//! a **bounded-variable two-phase revised simplex** method:
//!
//! - constraint columns are stored sparse ([`sparse::SparseVec`]);
//! - the basis is factorized by a left-looking sparse LU with partial
//!   pivoting and sparsity-ordered columns ([`lu`]);
//! - pivots between refactorizations are applied in product form
//!   (eta vectors, [`basis`]);
//! - all variables carry individual `[lower, upper]` bounds (either may be
//!   infinite), so geometric LPs with free coordinates need no variable
//!   splitting;
//! - phase 1 minimizes the sum of artificial variables; phase 2 the real
//!   objective.
//!
//! A deliberately simple dense-inverse basis engine backs the same simplex
//! driver and serves as a cross-checking oracle in the test suite.
//!
//! # Example
//!
//! ```
//! use info_lp::{Model, Cmp};
//!
//! # fn main() -> Result<(), info_lp::LpError> {
//! // minimize x + 2y  s.t.  x + y ≥ 3, y ≤ 5, 0 ≤ x, 0 ≤ y
//! let mut m = Model::new();
//! let x = m.add_var(0.0, f64::INFINITY, 1.0);
//! let y = m.add_var(0.0, 5.0, 2.0);
//! m.add_row([(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
//! let sol = m.solve()?;
//! assert!((sol.objective - 3.0).abs() < 1e-7); // x = 3, y = 0
//! assert!((sol[x] - 3.0).abs() < 1e-7);
//! # Ok(())
//! # }
//! ```

pub mod basis;
pub mod lu;
pub mod sparse;

mod error;
mod model;
mod simplex;

pub use error::LpError;
pub use model::{Cmp, Model, RowId, Solution, VarId};
pub use simplex::{CoreLp, SimplexOptions, SolveStatus, WarmBasis};
