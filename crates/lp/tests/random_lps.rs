//! Randomized validation of the simplex solver.
//!
//! Strategy: generate LPs that are feasible by construction (rows are built
//! around a known interior point), solve them, and then *verify* the answer
//! independently — primal feasibility plus optimality certified against a
//! sampling of random feasible directions and against the dense-engine
//! oracle.

use info_lp::basis::DenseBasis;
use info_lp::{Cmp, Model, SimplexOptions};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// One raw constraint row: terms, comparison, rhs.
type RawRow = (Vec<(usize, f64)>, Cmp, f64);

/// Raw LP data: (lb, ub, obj, rows, known interior point).
type RawLp = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<RawRow>, Vec<f64>);

/// Checks primal feasibility of `x` for the model-building data.
#[allow(clippy::too_many_arguments)]
fn assert_feasible(
    x: &[f64],
    lb: &[f64],
    ub: &[f64],
    rows: &[RawRow],
    tol: f64,
) {
    for (j, &v) in x.iter().enumerate() {
        assert!(v >= lb[j] - tol, "x[{j}] = {v} below lb {}", lb[j]);
        assert!(v <= ub[j] + tol, "x[{j}] = {v} above ub {}", ub[j]);
    }
    for (i, (terms, cmp, rhs)) in rows.iter().enumerate() {
        let lhs: f64 = terms.iter().map(|&(j, c)| c * x[j]).sum();
        match cmp {
            Cmp::Le => assert!(lhs <= rhs + tol, "row {i}: {lhs} > {rhs}"),
            Cmp::Ge => assert!(lhs >= rhs - tol, "row {i}: {lhs} < {rhs}"),
            Cmp::Eq => assert!((lhs - rhs).abs() <= tol, "row {i}: {lhs} != {rhs}"),
        }
    }
}

/// Builds a model from the raw data.
fn build(lb: &[f64], ub: &[f64], obj: &[f64], rows: &[RawRow]) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..lb.len()).map(|j| m.add_var(lb[j], ub[j], obj[j])).collect();
    for (terms, cmp, rhs) in rows {
        m.add_row(terms.iter().map(|&(j, c)| (vars[j], c)), *cmp, *rhs);
    }
    m
}

/// Random feasible-by-construction LP; returns (lb, ub, obj, rows, interior).
fn random_lp(
    rng: &mut impl Rng,
    n: usize,
    m: usize,
) -> RawLp {
    // Interior point inside a box.
    let lb: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..0.0)).collect();
    let ub: Vec<f64> = lb.iter().map(|&l| l + rng.gen_range(1.0..10.0)).collect();
    let x0: Vec<f64> = (0..n)
        .map(|j| {
            let t: f64 = rng.gen_range(0.2..0.8);
            lb[j] + t * (ub[j] - lb[j])
        })
        .collect();
    let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let mut rows = Vec::with_capacity(m);
    for _ in 0..m {
        let k = rng.gen_range(1..=3.min(n));
        let mut terms = Vec::with_capacity(k);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..k {
            let j = rng.gen_range(0..n);
            if seen.insert(j) {
                terms.push((j, rng.gen_range(-3.0..3.0)));
            }
        }
        let lhs0: f64 = terms.iter().map(|&(j, c)| c * x0[j]).sum();
        // Keep x0 feasible with positive slack so the LP stays feasible.
        let slack = rng.gen_range(0.5..3.0);
        let cmp = if rng.gen_bool(0.5) { Cmp::Le } else { Cmp::Ge };
        let rhs = match cmp {
            Cmp::Le => lhs0 + slack,
            Cmp::Ge => lhs0 - slack,
            Cmp::Eq => unreachable!(),
        };
        rows.push((terms, cmp, rhs));
    }
    (lb, ub, obj, rows, x0)
}

#[test]
fn random_lps_solve_and_verify() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    for trial in 0..60 {
        let n = rng.gen_range(2..12);
        let m = rng.gen_range(1..15);
        let (lb, ub, obj, rows, x0) = random_lp(&mut rng, n, m);
        let model = build(&lb, &ub, &obj, &rows);
        let sol = model
            .solve()
            .unwrap_or_else(|e| panic!("trial {trial}: solver failed on feasible LP: {e}"));
        assert_feasible(&sol.values, &lb, &ub, &rows, 1e-6);
        // The known interior point is feasible, so the optimum can be no worse.
        let obj0: f64 = x0.iter().zip(obj.iter()).map(|(a, b)| a * b).sum();
        assert!(
            sol.objective <= obj0 + 1e-6,
            "trial {trial}: optimum {} worse than interior point {obj0}",
            sol.objective
        );
        // Monte-Carlo optimality spot check: random feasible perturbations
        // of the optimum should never improve the objective.
        for _ in 0..50 {
            let xr: Vec<f64> = (0..n)
                .map(|j| {
                    let t: f64 = rng.gen_range(0.0..1.0);
                    lb[j] + t * (ub[j] - lb[j])
                })
                .collect();
            let feas = rows.iter().all(|(terms, cmp, rhs)| {
                let lhs: f64 = terms.iter().map(|&(j, c)| c * xr[j]).sum();
                match cmp {
                    Cmp::Le => lhs <= *rhs,
                    Cmp::Ge => lhs >= *rhs,
                    Cmp::Eq => (lhs - rhs).abs() < 1e-9,
                }
            });
            if feas {
                let o: f64 = xr.iter().zip(obj.iter()).map(|(a, b)| a * b).sum();
                assert!(
                    sol.objective <= o + 1e-6,
                    "trial {trial}: sampled point beats 'optimum' ({o} < {})",
                    sol.objective
                );
            }
        }
    }
}

#[test]
fn sparse_and_dense_engines_agree_on_random_lps() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    for _ in 0..40 {
        let n = rng.gen_range(2..10);
        let m = rng.gen_range(1..10);
        let (lb, ub, obj, rows, _) = random_lp(&mut rng, n, m);
        let model = build(&lb, &ub, &obj, &rows);
        let core = model.to_core();
        let s_sparse = model.solve().expect("sparse solve");
        let s_dense = core
            .solve_with(DenseBasis::new(), SimplexOptions::default())
            .expect("dense solve");
        assert!(
            (s_sparse.objective - s_dense.objective).abs()
                < 1e-6 * (1.0 + s_sparse.objective.abs()),
            "objective mismatch: sparse {} vs dense {}",
            s_sparse.objective,
            s_dense.objective
        );
    }
}

#[test]
fn equality_systems_with_known_solutions() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    for _ in 0..30 {
        // Square nonsingular-ish system A x = b with x0 the designated
        // solution and bounds wide enough that x0 is the unique feasible
        // point of the equalities within a full-rank square system.
        let n = rng.gen_range(2..8);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let mut rows = Vec::new();
        for i in 0..n {
            let terms: Vec<(usize, f64)> = (0..n)
                .map(|j| {
                    let base: f64 = rng.gen_range(-2.0..2.0);
                    (j, if i == j { base + 5.0 } else { base })
                })
                .collect();
            let rhs: f64 = terms.iter().map(|&(j, c)| c * x0[j]).sum();
            rows.push((terms, Cmp::Eq, rhs));
        }
        let lb = vec![-100.0; n];
        let ub = vec![100.0; n];
        let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let model = build(&lb, &ub, &obj, &rows);
        let sol = model.solve().expect("full-rank equality system is feasible");
        for (j, (sv, xv)) in sol.values.iter().zip(&x0).enumerate() {
            assert!((sv - xv).abs() < 1e-5, "x[{j}] = {sv} expected {xv}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn seeded_lps_never_violate_feasibility(seed in 0u64..10_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..8);
        let m = rng.gen_range(1..8);
        let (lb, ub, obj, rows, _) = random_lp(&mut rng, n, m);
        let model = build(&lb, &ub, &obj, &rows);
        let sol = model.solve().expect("feasible by construction");
        assert_feasible(&sol.values, &lb, &ub, &rows, 1e-6);
    }

    #[test]
    fn scaling_objective_scales_optimum(seed in 0u64..3_000, k in 1.0f64..10.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..6);
        let m = rng.gen_range(1..6);
        let (lb, ub, obj, rows, _) = random_lp(&mut rng, n, m);
        let m1 = build(&lb, &ub, &obj, &rows);
        let scaled: Vec<f64> = obj.iter().map(|c| c * k).collect();
        let m2 = build(&lb, &ub, &scaled, &rows);
        let s1 = m1.solve().expect("feasible");
        let s2 = m2.solve().expect("feasible");
        prop_assert!(
            (s2.objective - k * s1.objective).abs() < 1e-5 * (1.0 + s2.objective.abs()),
            "scaling mismatch: {} vs {}", s2.objective, k * s1.objective
        );
    }
}
