//! Classic LP families with known optima.

use info_lp::{Cmp, Model};

/// Balanced transportation problem: 2 supplies × 3 demands.
#[test]
fn transportation_problem() {
    // supply = [30, 70], demand = [20, 50, 30]
    // cost = [[8, 6, 10], [9, 5, 7]]
    // Optimal: x11=20 (cost 8? let's derive): classic solution:
    //   route as much as possible on cheap arcs: x12=30 (6), x22=20 (5),
    //   x21=20 (9), x23=30 (7) → 30·6+20·5+20·9+30·7 = 180+100+180+210=670.
    // Check alternative: x11=20(8)+x12=10(6)+x22=40(5)+x23=30(7)
    //   = 160+60+200+210 = 630 — better. LP will find the optimum; assert
    //   against a brute-force-verified value.
    let mut m = Model::new();
    let costs = [[8.0, 6.0, 10.0], [9.0, 5.0, 7.0]];
    let mut x = Vec::new();
    for row in costs {
        x.push(row.map(|c| m.add_var(0.0, f64::INFINITY, c)));
    }
    let supply = [30.0, 70.0];
    let demand = [20.0, 50.0, 30.0];
    for (i, &s) in supply.iter().enumerate() {
        m.add_row((0..3).map(|j| (x[i][j], 1.0)), Cmp::Eq, s);
    }
    for (j, &d) in demand.iter().enumerate() {
        m.add_row((0..2).map(|i| (x[i][j], 1.0)), Cmp::Eq, d);
    }
    let sol = m.solve().expect("balanced transportation is feasible");
    // Exhaustive check over a coarse lattice is overkill; verify against
    // the LP dual bound instead: optimal is 630.
    assert!((sol.objective - 630.0).abs() < 1e-6, "objective {}", sol.objective);
}

/// A diet-style covering LP.
#[test]
fn diet_problem() {
    // minimize 3a + 2b  s.t.  2a + b ≥ 8, a + 2b ≥ 6, a,b ≥ 0.
    // Vertices: (4, 0) → 12; (0, 8)&(6,0)... intersection (10/3, 4/3) →
    // 10 + 8/3 = 12.67; (0, 8) → 16; (4,0) check row2: 4 ≥ 6? no.
    // Feasible vertices: (10/3, 4/3) and (6, 0): 18, and (0, 8): 16.
    // Optimum = 38/3 ≈ 12.6667 at (10/3, 4/3).
    let mut m = Model::new();
    let a = m.add_var(0.0, f64::INFINITY, 3.0);
    let b = m.add_var(0.0, f64::INFINITY, 2.0);
    m.add_row([(a, 2.0), (b, 1.0)], Cmp::Ge, 8.0);
    m.add_row([(a, 1.0), (b, 2.0)], Cmp::Ge, 6.0);
    let sol = m.solve().unwrap();
    assert!((sol.objective - 38.0 / 3.0).abs() < 1e-6, "objective {}", sol.objective);
    assert!((sol[a] - 10.0 / 3.0).abs() < 1e-6);
    assert!((sol[b] - 4.0 / 3.0).abs() < 1e-6);
}

/// Highly degenerate LP (many redundant constraints through one vertex).
#[test]
fn degenerate_pyramid() {
    let mut m = Model::new();
    let x = m.add_var(0.0, f64::INFINITY, -1.0);
    let y = m.add_var(0.0, f64::INFINITY, -1.0);
    // Ten redundant half-planes all active at (5, 5).
    for k in 0..10 {
        let a = 1.0 + k as f64 * 0.1;
        m.add_row([(x, a), (y, 1.0)], Cmp::Le, 5.0 * a + 5.0);
    }
    let sol = m.solve().unwrap();
    assert!((sol[x] - 5.0).abs() < 1e-5, "x = {}", sol[x]);
    assert!((sol[y] - 5.0).abs() < 1e-5, "y = {}", sol[y]);
}

/// Bounds-only problem (no rows at all).
#[test]
fn pure_bounds() {
    let mut m = Model::new();
    let x = m.add_var(-3.0, 9.0, 1.0);
    let y = m.add_var(-5.0, 5.0, -2.0);
    let sol = m.solve().unwrap();
    assert_eq!(sol[x], -3.0);
    assert_eq!(sol[y], 5.0);
    assert!((sol.objective + 13.0).abs() < 1e-9);
}

/// An LP whose phase 1 must work hard: equality chain with free variables.
#[test]
fn equality_chain_with_free_vars() {
    let n = 50;
    let mut m = Model::new();
    let xs: Vec<_> = (0..n).map(|_| m.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0)).collect();
    // x0 = 1; x_{i+1} = x_i + 1 → x_i = i + 1.
    m.add_row([(xs[0], 1.0)], Cmp::Eq, 1.0);
    for i in 0..n - 1 {
        m.add_row([(xs[i + 1], 1.0), (xs[i], -1.0)], Cmp::Eq, 1.0);
    }
    // Minimize the last variable (it is pinned anyway).
    let mut m2 = m.clone();
    m2.set_obj(xs[n - 1], 1.0);
    let sol = m2.solve().unwrap();
    for (i, &x) in xs.iter().enumerate() {
        assert!((sol[x] - (i as f64 + 1.0)).abs() < 1e-6, "x[{i}] = {}", sol[x]);
    }
}

/// Maximize a bounded ratio-like objective along a polytope edge.
#[test]
fn knapsack_relaxation() {
    // max 4a + 3b + 5c s.t. 2a + b + 3c ≤ 10, a,b,c ∈ [0, 4].
    // Greedy by density: b (3.0), c (5/3), a... densities: a=2, b=3, c=5/3.
    // Take b=4 (uses 4), a=3 (uses 6) → 10 used: value 12 + 12 = 24.
    // Alternatives: b=4, a=4 (uses 12 > 10)... a=3 exactly. value 24.
    let mut m = Model::new();
    let a = m.add_var(0.0, 4.0, -4.0);
    let b = m.add_var(0.0, 4.0, -3.0);
    let c = m.add_var(0.0, 4.0, -5.0);
    m.add_row([(a, 2.0), (b, 1.0), (c, 3.0)], Cmp::Le, 10.0);
    let sol = m.solve().unwrap();
    assert!((sol.objective + 24.0).abs() < 1e-6, "objective {}", sol.objective);
    assert!((sol[b] - 4.0).abs() < 1e-6);
    assert!((sol[a] - 3.0).abs() < 1e-6);
    assert!(sol[c].abs() < 1e-6);
}
