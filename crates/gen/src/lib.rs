//! Synthetic benchmark circuits for the InFO RDL routing experiments.
//!
//! The paper's dense1–dense5 industrial circuits are proprietary; Table I
//! only discloses their aggregate statistics (#chips, |Q|, |G|, |N|,
//! |L_w|, |L_v|). [`dense`] regenerates seeded synthetic circuits with the
//! same statistics: chips in a grid arrangement, I/O pads scattered
//! irregularly along chip peripheries (arbitrary, non-grid positions),
//! pre-assigned inter-chip pad pairs (|N| = |Q|/2, exactly as the Table I
//! counts imply), and a field of unconnected bump pads acting as
//! bottom-layer blockage — the closest reconstruction the published data
//! permits (see DESIGN.md, substitutions).
//!
//! [`patterns`] builds the worked-example instances behind Fig. 2
//! (entangled nets that a no-flexible-via router needs one layer each
//! for) and Fig. 5 (a congested channel that separates weighted from
//! unweighted MPSC).

pub mod patterns;

mod dense;

pub use dense::{build_dense, dense, dense_spec, DenseSpec};
