//! The dense1–dense5 benchmark family (Table I statistics).

use info_geom::{Coord, Point, Rect};
use info_model::{DesignRules, Package, PackageBuilder, PadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one synthetic dense circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseSpec {
    /// Chip grid columns.
    pub chips_x: usize,
    /// Chip grid rows.
    pub chips_y: usize,
    /// Number of I/O pads `|Q|` (nets take two each).
    pub io_pads: usize,
    /// Number of bump pads `|G|` (unconnected BGA field).
    pub bump_pads: usize,
    /// Number of pre-assigned nets `|N|`.
    pub nets: usize,
    /// Wire layers `|L_w|`.
    pub wire_layers: usize,
    /// RNG seed for pad scatter and net pairing.
    pub seed: u64,
}

/// Table I statistics for dense1–dense5.
///
/// # Panics
///
/// Panics if `index` is not in `1..=5`.
pub fn dense_spec(index: usize) -> DenseSpec {
    match index {
        1 => DenseSpec { chips_x: 2, chips_y: 1, io_pads: 44, bump_pads: 324, nets: 22, wire_layers: 3, seed: 0xD1 },
        2 => DenseSpec { chips_x: 3, chips_y: 1, io_pads: 92, bump_pads: 784, nets: 46, wire_layers: 3, seed: 0xD2 },
        3 => DenseSpec { chips_x: 3, chips_y: 2, io_pads: 160, bump_pads: 308, nets: 80, wire_layers: 5, seed: 0xD3 },
        4 => DenseSpec { chips_x: 3, chips_y: 2, io_pads: 222, bump_pads: 684, nets: 111, wire_layers: 5, seed: 0xD4 },
        5 => DenseSpec { chips_x: 3, chips_y: 3, io_pads: 522, bump_pads: 1444, nets: 261, wire_layers: 5, seed: 0xD5 },
    _ => panic!("dense benchmarks are numbered 1..=5"),
    }
}

/// dense3/dense4 share a 6-chip arrangement; dense4 is denser. Correct
/// the chip count for dense4 (Table I: 6 chips).
fn chip_count_override(index: usize) -> Option<(usize, usize)> {
    match index {
        3 => Some((3, 2)),  // 5 chips: one grid slot left empty
        4 => Some((3, 2)),  // 6 chips
        _ => None,
    }
}

/// Builds the `dense<index>` circuit.
///
/// # Panics
///
/// Panics if `index` is not in `1..=5`.
pub fn dense(index: usize) -> Package {
    let spec = dense_spec(index);
    let _ = chip_count_override(index);
    // dense3 has 5 chips on a 3 × 2 grid (one slot empty).
    let skip_last_chip = index == 3;
    build_dense(spec, skip_last_chip)
}

/// Builds a circuit from an explicit spec (for scaling studies).
pub fn build_dense(spec: DenseSpec, skip_last_chip: bool) -> Package {
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // --- Floorplan: chips on a grid with fan-out margins.
    let chip_w: Coord = 1_200_000;
    let chip_h: Coord = 1_200_000;
    let margin: Coord = 700_000; // fan-out margin around and between chips
    let die_w = spec.chips_x as Coord * (chip_w + margin) + margin;
    let die_h = spec.chips_y as Coord * (chip_h + margin) + margin;
    let die = Rect::new(Point::new(0, 0), Point::new(die_w, die_h));
    let mut b = PackageBuilder::new(die, DesignRules::default(), spec.wire_layers);

    let mut chips = Vec::new();
    'grid: for gy in 0..spec.chips_y {
        for gx in 0..spec.chips_x {
            if skip_last_chip && chips.len() + 1 == spec.chips_x * spec.chips_y {
                break 'grid;
            }
            let x0 = margin + gx as Coord * (chip_w + margin);
            let y0 = margin + gy as Coord * (chip_h + margin);
            chips.push(b.add_chip(Rect::new(
                Point::new(x0, y0),
                Point::new(x0 + chip_w, y0 + chip_h),
            )));
        }
    }
    let n_chips = chips.len();

    // --- Irregular peripheral I/O pads: scattered along chip edges at
    // random (non-grid) positions and random depths from the edge.
    let per_chip = spec.io_pads / n_chips;
    let mut extra = spec.io_pads - per_chip * n_chips;
    let pad_margin: Coord = 20_000; // min distance of pad center from edge
    let min_pitch: Coord = 24_000; // pad + spacing with irregular jitter room
    let mut pads_of_chip: Vec<Vec<PadId>> = vec![Vec::new(); n_chips];
    for (ci, &chip) in chips.iter().enumerate() {
        let outline_idx = chip;
        let outline = {
            // PackageBuilder has no getter; recompute the grid position.
            let k = ci;
            let gx = k % spec.chips_x;
            let gy = k / spec.chips_x;
            let x0 = margin + gx as Coord * (chip_w + margin);
            let y0 = margin + gy as Coord * (chip_h + margin);
            Rect::new(Point::new(x0, y0), Point::new(x0 + chip_w, y0 + chip_h))
        };
        let mut want = per_chip + usize::from(extra > 0);
        extra = extra.saturating_sub(1);
        // Candidate slots along the 4 edges, then jitter and subsample.
        let mut slots: Vec<Point> = Vec::new();
        let per_edge_span = chip_w - 2 * pad_margin;
        let max_per_edge = (per_edge_span / min_pitch) as usize;
        for edge in 0..4u8 {
            for k in 0..max_per_edge {
                let t = pad_margin + k as Coord * min_pitch + rng.gen_range(0..6_000);
                let depth = pad_margin + rng.gen_range(0..12_000); // irregular depth
                let p = match edge {
                    0 => Point::new(outline.lo.x + t, outline.lo.y + depth), // south
                    1 => Point::new(outline.hi.x - depth, outline.lo.y + t), // east
                    2 => Point::new(outline.hi.x - t, outline.hi.y - depth), // north
                    _ => Point::new(outline.lo.x + depth, outline.hi.y - t), // west
                };
                slots.push(p);
            }
        }
        // Shuffle slots and take the first `want` that satisfy spacing.
        for i in (1..slots.len()).rev() {
            let j = rng.gen_range(0..=i);
            slots.swap(i, j);
        }
        let mut placed: Vec<Point> = Vec::new();
        for p in slots {
            if want == 0 {
                break;
            }
            let clear = placed
                .iter()
                .all(|q| (p.x - q.x).abs().max((p.y - q.y).abs()) >= min_pitch);
            if !clear {
                continue;
            }
            if let Ok(id) = b.add_io_pad(outline_idx, p) {
                pads_of_chip[ci].push(id);
                placed.push(p);
                want -= 1;
            }
        }
        assert_eq!(want, 0, "chip {ci}: could not place all I/O pads; enlarge the chip");
    }

    // --- Bump pad field: a regular BGA grid (unconnected; bottom-layer
    // blockage), thinned to exactly |G| sites. The pitch adapts to the
    // die so the requested count always fits.
    let mut bga_pitch: Coord =
        (((die_w as f64 * die_h as f64) / spec.bump_pads.max(1) as f64).sqrt() * 0.92) as Coord;
    bga_pitch = bga_pitch.clamp(40_000, 200_000);
    let mut bga_sites: Vec<Point> = Vec::new();
    loop {
        bga_sites.clear();
        let mut y = bga_pitch / 2 + 20_000;
        while y < die_h - bga_pitch / 2 {
            let mut x = bga_pitch / 2 + 20_000;
            while x < die_w - bga_pitch / 2 {
                bga_sites.push(Point::new(x, y));
                x += bga_pitch;
            }
            y += bga_pitch;
        }
        if bga_sites.len() >= spec.bump_pads || bga_pitch <= 40_000 {
            break;
        }
        bga_pitch = (bga_pitch * 9 / 10).max(40_000);
    }
    // Deterministic thinning: keep evenly-strided sites.
    let keep = spec.bump_pads.min(bga_sites.len());
    let stride = (bga_sites.len() as f64 / keep.max(1) as f64).max(1.0);
    let mut added = 0usize;
    let mut fpos = 0.0f64;
    while added < keep && (fpos as usize) < bga_sites.len() {
        if b.add_bump_pad(bga_sites[fpos as usize]).is_ok() {
            added += 1;
        }
        fpos += stride;
    }

    // --- Pre-assigned inter-chip nets: |N| pairs over distinct chips,
    // biased toward grid-adjacent chips (as inter-chip buses are), with
    // random pad selection producing entangled orders.
    let mut free: Vec<Vec<PadId>> = pads_of_chip.clone();
    let adjacent = |a: usize, bidx: usize| -> bool {
        let (ax, ay) = (a % spec.chips_x, a / spec.chips_x);
        let (bx, by) = (bidx % spec.chips_x, bidx / spec.chips_x);
        ax.abs_diff(bx) + ay.abs_diff(by) == 1
    };
    let mut made = 0usize;
    let mut guard = 0usize;
    while made < spec.nets {
        guard += 1;
        assert!(guard < 100_000, "net pairing did not converge");
        // Draw the first terminal from the chip with the most free pads so
        // the supply never strands on a single chip.
        let ca = (0..n_chips)
            .max_by_key(|&c| free[c].len())
            .expect("chips exist");
        assert!(!free[ca].is_empty(), "ran out of pads before placing all nets");
        // 80% adjacent-chip nets, 20% any-chip nets; fall back to any chip
        // with free pads when no preferred neighbor has any.
        let neighbors: Vec<usize> =
            (0..n_chips).filter(|&c| c != ca && adjacent(ca, c) && !free[c].is_empty()).collect();
        let others: Vec<usize> =
            (0..n_chips).filter(|&c| c != ca && !free[c].is_empty()).collect();
        let pool = if rng.gen_bool(0.8) && !neighbors.is_empty() { &neighbors } else { &others };
        if pool.is_empty() {
            continue;
        }
        let cb = pool[rng.gen_range(0..pool.len())];
        let ia = rng.gen_range(0..free[ca].len());
        let ib = rng.gen_range(0..free[cb].len());
        let pa = free[ca].swap_remove(ia);
        let pb = free[cb].swap_remove(ib);
        b.add_net(pa, pb).expect("pads are free and io-io");
        made += 1;
    }

    b.build().expect("generated circuit must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_statistics_reproduced() {
        for (idx, chips, q, g, n, lw) in [
            (1usize, 2usize, 44usize, 324usize, 22usize, 3usize),
            (2, 3, 92, 784, 46, 3),
            (3, 5, 160, 308, 80, 5),
            (4, 6, 222, 684, 111, 5),
            (5, 9, 522, 1444, 261, 5),
        ] {
            let pkg = dense(idx);
            assert_eq!(pkg.chips().len(), chips, "dense{idx} chips");
            assert_eq!(pkg.io_pad_count(), q, "dense{idx} |Q|");
            assert_eq!(pkg.bump_pad_count(), g, "dense{idx} |G|");
            assert_eq!(pkg.nets().len(), n, "dense{idx} |N|");
            assert_eq!(pkg.wire_layer_count(), lw, "dense{idx} |L_w|");
            assert_eq!(pkg.via_layer_count(), lw + 1, "dense{idx} |L_v|");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dense(1);
        let b = dense(1);
        assert_eq!(info_model::write_package(&a), info_model::write_package(&b));
    }

    #[test]
    fn all_nets_are_inter_chip() {
        let pkg = dense(2);
        for net in pkg.nets() {
            assert!(pkg.is_inter_chip(net.id));
            let ca = pkg.pad(net.a).chip().unwrap();
            let cb = pkg.pad(net.b).chip().unwrap();
            assert_ne!(ca, cb, "{} connects a chip to itself", net.id);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = dense_spec(1);
        let a = build_dense(spec, false);
        spec.seed = 999;
        let b = build_dense(spec, false);
        assert_ne!(info_model::write_package(&a), info_model::write_package(&b));
    }
}
