//! Worked-example patterns behind the paper's figures.

use info_geom::{Coord, Point, Rect};
use info_model::{DesignRules, Package, PackageBuilder, WireLayer};

/// The Fig. 2 pattern: `k` inter-chip nets whose pad orders are reversed
/// between two facing chips, inside a sealed channel.
///
/// The region between the chips is the only routing resource: full-width
/// fence obstacles (all layers) seal the channel's top and bottom, and
/// "comb" obstacles (all layers) cover everything left of the left chip
/// edge and right of the right chip edge except one private corridor per
/// net at its pad's row. Each net therefore enters the channel at a fixed
/// boundary point on every layer — in the real dense circuits, neighbor
/// pads, fan-in wiring, and the bump field play this role. With the
/// channel simply connected and entry points interleaved in reversed
/// order, single-layer routes of any two nets must cross (Jordan):
///
/// - a router without flexible vias needs `k` wire layers (one net per
///   layer — Fig. 2(a));
/// - the via-based router weaves all `k` nets through 2 wire layers
///   (Fig. 2(b)).
pub fn entangled(k: usize, wire_layers: usize) -> Package {
    assert!(k >= 1, "need at least one net");
    let rules = DesignRules::default();
    let row_pitch: Coord = 60_000;
    let chan_y0: Coord = 250_000;
    let chan_y1 = chan_y0 + row_pitch * (k as Coord + 1);
    let die = Rect::new(Point::new(0, 0), Point::new(1_400_000, chan_y1 + 250_000));
    let mut b = PackageBuilder::new(die, rules, wire_layers);
    let c1 = b.add_chip(Rect::new(Point::new(150_000, chan_y0), Point::new(500_000, chan_y1)));
    let c2 = b.add_chip(Rect::new(Point::new(900_000, chan_y0), Point::new(1_250_000, chan_y1)));

    // Fences sealing the channel band on every wire layer.
    for l in 0..wire_layers {
        b.add_obstacle(
            WireLayer(l as u8),
            Rect::new(Point::new(0, chan_y0 - 100_000), Point::new(die.hi.x, chan_y0)),
        )
        .expect("fence fits");
        b.add_obstacle(
            WireLayer(l as u8),
            Rect::new(Point::new(0, chan_y1), Point::new(die.hi.x, chan_y1 + 100_000)),
        )
        .expect("fence fits");
    }

    // Connected pads just inside the facing chip edges, reversed on the
    // right side.
    let row = |j: usize| chan_y0 + row_pitch * (j as Coord + 1);
    let depth: Coord = 6_000;
    let mut left_rows = Vec::with_capacity(k);
    let mut right_rows = Vec::with_capacity(k);
    for j in 0..k {
        let (ly, ry) = (row(j), row(k - 1 - j)); // reversed order
        let pl = b.add_io_pad(c1, Point::new(500_000 - depth, ly)).expect("pad fits");
        let pr = b.add_io_pad(c2, Point::new(900_000 + depth, ry)).expect("pad fits");
        b.add_net(pl, pr).expect("valid net");
        left_rows.push(ly);
        right_rows.push(ry);
    }

    // Combs: everything outside the channel is blocked on every layer
    // except one 20 µm corridor per net at its row. The pad's own
    // clearance band seals each corridor against foreign nets.
    let win: Coord = 10_000;
    for (x0, x1, rows) in [
        (0, 500_000, &left_rows),
        (900_000, die.hi.x, &right_rows),
    ] {
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        for l in 0..wire_layers {
            let mut y = chan_y0;
            for &r in &sorted {
                if r - win > y {
                    b.add_obstacle(
                        WireLayer(l as u8),
                        Rect::new(Point::new(x0, y), Point::new(x1, r - win)),
                    )
                    .expect("comb fits");
                }
                y = r + win;
            }
            if y < chan_y1 {
                b.add_obstacle(
                    WireLayer(l as u8),
                    Rect::new(Point::new(x0, y), Point::new(x1, chan_y1)),
                )
                .expect("comb fits");
            }
        }
    }
    b.build().expect("entangled pattern validates")
}

/// The Fig. 5 pattern: a congested narrow corridor plus an open region.
///
/// A large chip leaves only one narrow corridor (along the west die edge)
/// between its north and south fan-out regions. `n_through` nets connect
/// north-edge pads to south-edge pads — all of their fan-out pre-routes
/// must squeeze through the corridor, whose capacity is a handful of
/// wires. `n_local` nets connect pads along the north edge only and route
/// congestion-free. Unweighted MPSC sees all chords as equal; the weighted
/// version discounts the corridor nets by their overflow rate (Eq. (1))
/// and prefers assignments that detailed routing can actually finish.
pub fn congested_channel(n_through: usize, n_local: usize, wire_layers: usize) -> Package {
    // Heavier rules make the corridor capacity small without microscopic
    // geometry: pitch = 40 µm, corridor 100 µm wide → capacity ≈ 2.
    let rules = DesignRules { min_spacing: 20_000, wire_width: 20_000, via_width: 30_000 };
    let pitch: Coord = 100_000;
    // Size the die to the pad demand: through pads from x = 400 µm, local
    // pairs east of them with a margin.
    let through_start: Coord = 400_000 + n_local as Coord * pitch;
    let through_end = through_start + n_through as Coord * pitch;
    let local_start = through_end + 2 * pitch;
    let local_end = local_start + n_local as Coord * 3 * pitch;
    let die_w = (local_end + 4 * pitch).max(2_000_000);
    let die = Rect::new(Point::new(0, 0), Point::new(die_w, 1_400_000));
    let mut b = PackageBuilder::new(die, rules, wire_layers);
    // Chip flush with the EAST die edge: the only north-south corridor is
    // the 100 µm strip on the west side.
    let chip = b.add_chip(Rect::new(Point::new(100_000, 400_000), Point::new(die_w, 1_000_000)));

    let mut nets = Vec::new();
    // Through nets: north edge ↔ south edge.
    for i in 0..n_through {
        let x = through_start + (i as Coord) * pitch;
        let n = b.add_io_pad(chip, Point::new(x, 1_000_000 - 30_000)).expect("north pad");
        let s = b.add_io_pad(chip, Point::new(x, 400_000 + 30_000)).expect("south pad");
        nets.push(b.add_net(n, s).expect("valid net"));
    }
    // Local nets: *spanning* pairs along the north edge whose chords
    // enclose the through block (west pad before it, east pad after it),
    // so they cross every through chord in the circular model — the
    // either/or choice of Fig. 5.
    for i in 0..n_local {
        let wx = through_start - (i as Coord + 1) * pitch;
        let ex = local_start + (i as Coord) * pitch;
        let p = b.add_io_pad(chip, Point::new(wx, 1_000_000 - 30_000)).expect("west pad");
        let q = b.add_io_pad(chip, Point::new(ex, 1_000_000 - 30_000)).expect("east pad");
        nets.push(b.add_net(p, q).expect("valid net"));
    }
    b.build().expect("congested pattern validates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entangled_statistics() {
        let pkg = entangled(3, 2);
        assert_eq!(pkg.nets().len(), 3);
        assert_eq!(pkg.chips().len(), 2);
        assert_eq!(pkg.wire_layer_count(), 2);
        // Dummy columns exist: many more pads than net terminals.
        assert_eq!(pkg.io_pad_count(), 6);
        // Fences on every layer.
        assert!(pkg.obstacles().len() >= 4);
        // Net order reversal: left terminals ascend while right descend.
        let ys: Vec<(i64, i64)> = pkg
            .nets()
            .iter()
            .map(|n| (pkg.pad(n.a).center.y, pkg.pad(n.b).center.y))
            .collect();
        for w in ys.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 > w[1].1);
        }
    }

    #[test]
    fn entangled_scales_with_k() {
        for k in [1, 2, 5] {
            let pkg = entangled(k, 2);
            assert_eq!(pkg.nets().len(), k);
        }
    }

    #[test]
    fn congested_statistics() {
        let pkg = congested_channel(6, 2, 2);
        assert_eq!(pkg.nets().len(), 8);
        assert_eq!(pkg.chips().len(), 1);
        // The chip touches the east die edge: no east corridor.
        assert_eq!(pkg.chips()[0].outline.hi.x, pkg.die().hi.x);
    }
}
