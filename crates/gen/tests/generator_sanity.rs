//! Sanity properties of the benchmark generators.

use info_gen::{build_dense, dense_spec, patterns};

#[test]
fn dense_pads_are_irregular() {
    // "Irregular pad structure": I/O pad positions must not form a single
    // regular grid. Check that x-coordinates on one chip's east edge have
    // non-uniform gaps.
    let mut spec = dense_spec(1);
    spec.seed = 3;
    let pkg = build_dense(spec, false);
    let mut ys: Vec<i64> = pkg
        .pads()
        .iter()
        .filter(|p| p.is_io() && p.chip() == Some(info_model::ChipId(0)))
        .map(|p| p.center.y)
        .collect();
    ys.sort_unstable();
    let gaps: Vec<i64> = ys.windows(2).map(|w| w[1] - w[0]).collect();
    let distinct: std::collections::BTreeSet<i64> = gaps.iter().copied().collect();
    assert!(
        distinct.len() > 2,
        "pad gaps look like a regular grid: {gaps:?}"
    );
}

#[test]
fn dense_respects_build_validation() {
    // The builder enforces spacing/containment; exercising several seeds
    // shows the generator never emits invalid geometry.
    for seed in [1u64, 7, 42, 99] {
        let mut spec = dense_spec(1);
        spec.seed = seed;
        let pkg = build_dense(spec, false);
        assert_eq!(pkg.nets().len(), spec.nets);
    }
}

#[test]
fn dense_scaling_spec() {
    // A custom spec scales the floorplan automatically.
    let mut spec = dense_spec(1);
    spec.chips_x = 2;
    spec.chips_y = 2;
    spec.io_pads = 40;
    spec.nets = 20;
    spec.bump_pads = 100;
    let pkg = build_dense(spec, false);
    assert_eq!(pkg.chips().len(), 4);
    assert_eq!(pkg.io_pad_count(), 40);
    assert_eq!(pkg.bump_pad_count(), 100);
    assert_eq!(pkg.nets().len(), 20);
}

#[test]
fn entangled_channel_is_sealed() {
    // The fences plus combs must cover the whole die width outside the
    // channel on every layer.
    let pkg = patterns::entangled(3, 2);
    let die = pkg.die();
    for layer in 0..pkg.wire_layer_count() {
        let covering: i64 = pkg
            .obstacles()
            .iter()
            .filter(|o| o.layer.index() == layer)
            .map(|o| o.rect.width() * o.rect.height() / 1_000_000)
            .sum();
        assert!(covering > 0, "layer {layer} has no sealing obstacles");
    }
    // Both chips remain inside the die with the channel between them.
    assert!(pkg.chips()[0].outline.hi.x < pkg.chips()[1].outline.lo.x);
    let _ = die;
}

#[test]
fn congested_corridor_statistics() {
    for (t, l) in [(4usize, 2usize), (8, 3)] {
        let pkg = patterns::congested_channel(t, l, 2);
        assert_eq!(pkg.nets().len(), t + l);
        // All nets are intra-chip I/O pairs on the single big chip.
        for n in pkg.nets() {
            assert!(pkg.is_inter_chip(n.id) || pkg.pad(n.a).chip() == pkg.pad(n.b).chip());
        }
    }
}
