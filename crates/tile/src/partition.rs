//! Line-extension partitioning and grid merging.
//!
//! [`line_extension_partition`] implements the rectangular dissection of
//! Ohtsuki's gridless routing work \[15\]: extend every boundary line of
//! every hole (fan-in region / obstacle) until it meets another hole or
//! the region boundary. The free space decomposes into rectangles.
//!
//! [`merge_cells`] implements the grid-merging cleanup of Lee et al. \[6\]:
//! greedily absorb fragmented cells into neighbors whenever their union is
//! itself a rectangle, preferring to eliminate the smallest cells first.

use info_geom::{Coord, Point, Rect};
use std::collections::BTreeSet;

/// Clips `holes` to the region and drops empty ones.
fn normalized_holes(region: Rect, holes: &[Rect]) -> Vec<Rect> {
    holes
        .iter()
        .map(|h| h.intersection(region))
        .filter(|h| !h.is_empty() && h.width() > 0 && h.height() > 0)
        .collect()
}

/// Partitions `region − holes` into rectangles by extending every hole
/// boundary line until it is blocked by another hole or the region edge.
///
/// Overlapping holes are allowed (their union is subtracted). Returns the
/// free-space rectangles; cells are closed regions that tile the free
/// space with disjoint interiors.
///
/// # Example
///
/// ```
/// use info_geom::{Point, Rect};
/// use info_tile::line_extension_partition;
///
/// let region = Rect::new(Point::new(0, 0), Point::new(100, 100));
/// let hole = Rect::new(Point::new(40, 40), Point::new(60, 60));
/// let cells = line_extension_partition(region, &[hole]);
/// // The classic pinwheel/ring around a single centered hole.
/// let free: i128 = cells.iter().map(|c| c.area()).sum();
/// assert_eq!(free, region.area() - hole.area());
/// ```
// The wall grids are indexed by (cut line, elementary slab) with constant
// neighbor lookups on both sides of the line; index loops read better than
// iterator chains here.
#[allow(clippy::needless_range_loop)]
pub fn line_extension_partition(region: Rect, holes: &[Rect]) -> Vec<Rect> {
    let holes = normalized_holes(region, holes);
    if region.is_empty() || region.width() == 0 || region.height() == 0 {
        return Vec::new();
    }

    // Candidate x-cuts: region edges plus hole vertical edges. A cut at x
    // is *active over a y-interval*: the segment extends from the hole
    // edge until blocked. We represent activity per elementary y-slab.
    let mut xs: BTreeSet<Coord> = BTreeSet::new();
    let mut ys: BTreeSet<Coord> = BTreeSet::new();
    xs.insert(region.lo.x);
    xs.insert(region.hi.x);
    ys.insert(region.lo.y);
    ys.insert(region.hi.y);
    for h in &holes {
        xs.insert(h.lo.x);
        xs.insert(h.hi.x);
        ys.insert(h.lo.y);
        ys.insert(h.hi.y);
    }
    let xs: Vec<Coord> = xs.into_iter().collect();
    let ys: Vec<Coord> = ys.into_iter().collect();
    let nx = xs.len() - 1; // elementary column count
    let ny = ys.len() - 1;

    let covered = |cx: usize, cy: usize| -> bool {
        let cell = Rect::new(Point::new(xs[cx], ys[cy]), Point::new(xs[cx + 1], ys[cy + 1]));
        holes.iter().any(|h| h.overlaps_interior(cell))
    };

    // vertical_cut[xi][cy] = does a vertical wall exist at x = xs[xi]
    // separating elementary cells (xi−1, cy) and (xi, cy)?
    // A wall exists if x is a region edge, a hole edge at that y-slab, or an
    // *extension* of a hole edge: grown from the hole outward until blocked.
    let mut vertical_cut = vec![vec![false; ny]; xs.len()];
    for v in vertical_cut[0].iter_mut() {
        *v = true;
    }
    for v in vertical_cut[nx].iter_mut() {
        *v = true;
    }
    let mut horizontal_cut = vec![vec![false; nx]; ys.len()];
    for h in horizontal_cut[0].iter_mut() {
        *h = true;
    }
    for h in horizontal_cut[ny].iter_mut() {
        *h = true;
    }

    // Hole boundaries are walls wherever a hole interior is adjacent.
    for xi in 1..nx {
        for cy in 0..ny {
            let left = covered(xi - 1, cy);
            let right = covered(xi, cy);
            if left != right {
                vertical_cut[xi][cy] = true;
            }
        }
    }
    for yi in 1..ny {
        for cx in 0..nx {
            let below = covered(cx, yi - 1);
            let above = covered(cx, yi);
            if below != above {
                horizontal_cut[yi][cx] = true;
            }
        }
    }

    // Extend each hole's vertical edges up and down until blocked by a
    // hole interior or the region boundary.
    for h in &holes {
        for &x in &[h.lo.x, h.hi.x] {
            let xi = xs.binary_search(&x).expect("hole edge in cut set");
            if xi == 0 || xi == nx {
                continue;
            }
            let y_top = ys.binary_search(&h.hi.y).expect("hole edge in cut set");
            let y_bot = ys.binary_search(&h.lo.y).expect("hole edge in cut set");
            // Upward from the hole top.
            for cy in y_top..ny {
                if covered(xi - 1, cy) || covered(xi, cy) {
                    break;
                }
                vertical_cut[xi][cy] = true;
            }
            // Downward from the hole bottom.
            for cy in (0..y_bot).rev() {
                if covered(xi - 1, cy) || covered(xi, cy) {
                    break;
                }
                vertical_cut[xi][cy] = true;
            }
        }
        // Horizontal edges left and right.
        for &y in &[h.lo.y, h.hi.y] {
            let yi = ys.binary_search(&y).expect("hole edge in cut set");
            if yi == 0 || yi == ny {
                continue;
            }
            let x_right = xs.binary_search(&h.hi.x).expect("hole edge in cut set");
            let x_left = xs.binary_search(&h.lo.x).expect("hole edge in cut set");
            for cx in x_right..nx {
                if covered(cx, yi - 1) || covered(cx, yi) {
                    break;
                }
                horizontal_cut[yi][cx] = true;
            }
            for cx in (0..x_left).rev() {
                if covered(cx, yi - 1) || covered(cx, yi) {
                    break;
                }
                horizontal_cut[yi][cx] = true;
            }
        }
    }

    // Flood-fill elementary cells into faces bounded by walls; each face of
    // a line-extension dissection is a rectangle by construction.
    let mut face = vec![vec![usize::MAX; ny]; nx];
    let mut faces: Vec<Rect> = Vec::new();
    for cx in 0..nx {
        for cy in 0..ny {
            if covered(cx, cy) || face[cx][cy] != usize::MAX {
                continue;
            }
            let id = faces.len();
            let mut stack = vec![(cx, cy)];
            face[cx][cy] = id;
            let mut bounds = Rect::new(
                Point::new(xs[cx], ys[cy]),
                Point::new(xs[cx + 1], ys[cy + 1]),
            );
            while let Some((ax, ay)) = stack.pop() {
                bounds = bounds.union(Rect::new(
                    Point::new(xs[ax], ys[ay]),
                    Point::new(xs[ax + 1], ys[ay + 1]),
                ));
                // Right neighbor.
                if ax + 1 < nx && !vertical_cut[ax + 1][ay] && !covered(ax + 1, ay) && face[ax + 1][ay] == usize::MAX {
                    face[ax + 1][ay] = id;
                    stack.push((ax + 1, ay));
                }
                if ax > 0 && !vertical_cut[ax][ay] && !covered(ax - 1, ay) && face[ax - 1][ay] == usize::MAX {
                    face[ax - 1][ay] = id;
                    stack.push((ax - 1, ay));
                }
                if ay + 1 < ny && !horizontal_cut[ay + 1][ax] && !covered(ax, ay + 1) && face[ax][ay + 1] == usize::MAX {
                    face[ax][ay + 1] = id;
                    stack.push((ax, ay + 1));
                }
                if ay > 0 && !horizontal_cut[ay][ax] && !covered(ax, ay - 1) && face[ax][ay - 1] == usize::MAX {
                    face[ax][ay - 1] = id;
                    stack.push((ax, ay - 1));
                }
            }
            faces.push(bounds);
        }
    }
    faces
}

/// Lee-style grid merging: greedily absorb cells into neighbors whenever
/// the union of two cells is itself a rectangle (they share a full edge),
/// until no cell thinner than `min_dim` can be eliminated and no
/// rectangle-preserving merge remains that reduces the cell count below
/// `target_count`.
///
/// Pass `target_count = 0` to merge as much as possible.
pub fn merge_cells(mut cells: Vec<Rect>, min_dim: Coord, target_count: usize) -> Vec<Rect> {
    let is_fragment = |c: &Rect| c.width() < min_dim || c.height() < min_dim;
    loop {
        let fragmented = cells.iter().any(is_fragment);
        let want_fewer = cells.len() > target_count.max(1);
        if !fragmented && !want_fewer {
            return cells;
        }
        // Find the best rectangle-preserving merge: prefer a pair that
        // eliminates a fragment, then the pair whose smaller member is
        // smallest (absorb tiny cells first).
        let mut best: Option<(usize, usize, bool, i128)> = None;
        for i in 0..cells.len() {
            for j in (i + 1)..cells.len() {
                let (a, b) = (cells[i], cells[j]);
                let mergeable = (a.lo.y == b.lo.y
                    && a.hi.y == b.hi.y
                    && (a.hi.x == b.lo.x || b.hi.x == a.lo.x))
                    || (a.lo.x == b.lo.x
                        && a.hi.x == b.hi.x
                        && (a.hi.y == b.lo.y || b.hi.y == a.lo.y));
                if !mergeable {
                    continue;
                }
                let frag = is_fragment(&a) || is_fragment(&b);
                let score = a.area().min(b.area());
                let better = match best {
                    None => true,
                    Some((.., bfrag, bscore)) => {
                        (frag && !bfrag) || (frag == bfrag && score < bscore)
                    }
                };
                if better {
                    best = Some((i, j, frag, score));
                }
            }
        }
        let Some((i, j, frag, _)) = best else {
            return cells;
        };
        // If only the fewer-cells goal remains and the candidate merge does
        // not involve a fragment, it still helps; but when neither goal is
        // advanced by this merge, stop.
        if !want_fewer && !frag {
            return cells;
        }
        let merged = cells[i].union(cells[j]);
        cells[i] = merged;
        cells.swap_remove(j); // i < j keeps index i valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_area(cells: &[Rect]) -> i128 {
        cells.iter().map(|c| c.area()).sum()
    }

    fn assert_disjoint(cells: &[Rect]) {
        for (i, a) in cells.iter().enumerate() {
            for b in &cells[i + 1..] {
                assert!(!a.overlaps_interior(*b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn no_holes_single_cell() {
        let region = Rect::new(Point::new(0, 0), Point::new(100, 50));
        let cells = line_extension_partition(region, &[]);
        assert_eq!(cells, vec![region]);
    }

    #[test]
    fn single_center_hole() {
        let region = Rect::new(Point::new(0, 0), Point::new(100, 100));
        let hole = Rect::new(Point::new(40, 40), Point::new(60, 60));
        let cells = line_extension_partition(region, &[hole]);
        assert_eq!(total_area(&cells), region.area() - hole.area());
        assert_disjoint(&cells);
        // Line extension around one hole yields 8 cells (full cross cuts).
        assert_eq!(cells.len(), 8, "{cells:?}");
        for c in &cells {
            assert!(!c.overlaps_interior(hole));
        }
    }

    #[test]
    fn two_holes_block_each_others_extensions() {
        let region = Rect::new(Point::new(0, 0), Point::new(100, 100));
        let h1 = Rect::new(Point::new(10, 40), Point::new(30, 60));
        let h2 = Rect::new(Point::new(60, 40), Point::new(80, 60));
        let cells = line_extension_partition(region, &[h1, h2]);
        assert_eq!(total_area(&cells), region.area() - h1.area() - h2.area());
        assert_disjoint(&cells);
        // The corridor between the holes is one cell: extensions of h1's
        // right edge and h2's left edge run vertically, horizontal edges of
        // each hole extend toward the other and are blocked by it.
        let corridor = cells
            .iter()
            .find(|c| c.lo.x == 30 && c.hi.x == 60 && c.lo.y == 40 && c.hi.y == 60);
        assert!(corridor.is_some(), "{cells:?}");
    }

    #[test]
    fn hole_touching_boundary() {
        let region = Rect::new(Point::new(0, 0), Point::new(100, 100));
        let hole = Rect::new(Point::new(0, 0), Point::new(50, 100));
        let cells = line_extension_partition(region, &[hole]);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0], Rect::new(Point::new(50, 0), Point::new(100, 100)));
    }

    #[test]
    fn overlapping_holes() {
        let region = Rect::new(Point::new(0, 0), Point::new(100, 100));
        let h1 = Rect::new(Point::new(20, 20), Point::new(60, 60));
        let h2 = Rect::new(Point::new(40, 40), Point::new(80, 80));
        let cells = line_extension_partition(region, &[h1, h2]);
        assert_disjoint(&cells);
        let union_area = h1.area() + h2.area()
            - h1.intersection(h2).area();
        assert_eq!(total_area(&cells), region.area() - union_area);
        for c in &cells {
            assert!(!c.overlaps_interior(h1) && !c.overlaps_interior(h2));
        }
    }

    #[test]
    fn fully_covered_region_has_no_cells() {
        let region = Rect::new(Point::new(0, 0), Point::new(10, 10));
        let cells = line_extension_partition(region, &[region]);
        assert!(cells.is_empty());
    }

    #[test]
    fn merge_reduces_fragmentation() {
        let region = Rect::new(Point::new(0, 0), Point::new(100, 100));
        let hole = Rect::new(Point::new(40, 40), Point::new(60, 60));
        let cells = line_extension_partition(region, &[hole]);
        let merged = merge_cells(cells.clone(), 30, 0);
        assert!(merged.len() < cells.len());
        assert_eq!(total_area(&merged), total_area(&cells));
        assert_disjoint(&merged);
    }

    #[test]
    fn merge_keeps_rectangles_disjoint_on_grid() {
        // A 3x3 grid of unit cells merges down to one rectangle.
        let mut cells = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                cells.push(Rect::new(Point::new(i * 10, j * 10), Point::new(i * 10 + 10, j * 10 + 10)));
            }
        }
        let merged = merge_cells(cells, 100, 0);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0], Rect::new(Point::new(0, 0), Point::new(30, 30)));
    }

    #[test]
    fn merge_respects_target_count() {
        let mut cells = Vec::new();
        for i in 0..4 {
            cells.push(Rect::new(Point::new(i * 10, 0), Point::new(i * 10 + 10, 10)));
        }
        let merged = merge_cells(cells, 5, 2);
        assert_eq!(merged.len(), 2);
    }
}
