//! Turning a tile path into legal X-architecture wire geometry.
//!
//! The A\* result is a sequence of tiles with entry points (crossing
//! midpoints and via sites). Realization connects consecutive entry points
//! with X-architecture patterns — a diagonal leg plus a straight leg, the
//! orientation chosen so every junction obeys the 90°/135° turn rule —
//! and splits the polyline at via sites into per-layer routes.

use crate::astar::AstarResult;
use info_geom::{Coord, Dir8, Point, Polyline, Vector};
use info_model::WireLayer;

/// A realized net: per-layer polylines plus via placements.
#[derive(Debug, Clone, PartialEq)]
pub struct RealizedNet {
    /// `(layer, polyline)` runs in path order.
    pub routes: Vec<(WireLayer, Polyline)>,
    /// Via placements `(center, upper, lower)`.
    pub vias: Vec<(Point, WireLayer, WireLayer)>,
}

impl RealizedNet {
    /// Total wirelength in nm.
    pub fn wirelength(&self) -> f64 {
        self.routes.iter().map(|(_, p)| p.length()).sum()
    }

    /// Bounding box of all geometry, if any.
    pub fn bbox(&self) -> Option<info_geom::Rect> {
        let mut pts = self
            .routes
            .iter()
            .flat_map(|(_, p)| p.points().iter().copied())
            .chain(self.vias.iter().map(|(p, _, _)| *p));
        let first = pts.next()?;
        let mut lo = first;
        let mut hi = first;
        for p in pts {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some(info_geom::Rect::new(lo, hi))
    }
}

/// Connects `from` → `to` with X-architecture segments whose first turn is
/// compatible with `incoming`. Returns the intermediate points *including*
/// `to` but excluding `from`, and the direction of the final segment.
///
/// The preferred patterns are `diagonal + straight` and
/// `straight + diagonal` (the minimal-wirelength X-architecture
/// connections); when neither starts with a legal turn, a rectilinear L is
/// used, and as a last resort a perpendicular jog is inserted.
pub fn xarch_connect(from: Point, to: Point, incoming: Option<Dir8>) -> (Vec<Point>, Option<Dir8>) {
    xarch_connect_pref(from, to, incoming, 0)
}

/// [`xarch_connect`] with a pattern preference `pref ∈ 0..4`: the
/// candidate order (diagonal+straight, straight+diagonal, rectilinear
/// horizontal-first, rectilinear vertical-first) is rotated left by
/// `pref`, so callers can steer the approach shape when the default
/// grazes a neighbor.
pub fn xarch_connect_pref(
    from: Point,
    to: Point,
    incoming: Option<Dir8>,
    pref: u8,
) -> (Vec<Point>, Option<Dir8>) {
    if from == to {
        return (Vec::new(), incoming);
    }
    let legal = |first: Dir8| incoming.is_none_or(|inc| inc.angular_distance(first) <= 2);

    // Direct X-architecture move.
    if let Some(d) = Dir8::of_vector(to - from) {
        if legal(d) {
            return (vec![to], Some(d));
        }
    }

    let dx = to.x - from.x;
    let dy = to.y - from.y;
    let m = dx.abs().min(dy.abs());
    let diag_step = Vector::new(dx.signum() * m, dy.signum() * m);
    let mut candidates: Vec<Vec<Point>> = vec![
        // Diagonal first, then straight.
        vec![from + diag_step, to],
        // Straight first, then diagonal.
        vec![to - diag_step, to],
        // Rectilinear L: horizontal first.
        vec![Point::new(to.x, from.y), to],
        // Rectilinear L: vertical first.
        vec![Point::new(from.x, to.y), to],
    ];
    candidates.rotate_left(usize::from(pref) % 4);
    for cand in candidates {
        if let Some(result) = try_pattern(from, &cand, incoming) {
            return result;
        }
    }
    // Last resort: jog perpendicular to the incoming direction, then
    // connect freely (the jog leaves every direction reachable).
    let inc = incoming.expect("no incoming direction cannot fail");
    let jog_dir = Dir8::from_index(inc.index() + 2); // 90° to the left
    let jog_len: Coord = 1.max((dx.abs() + dy.abs()) / 8);
    let mid = from + jog_dir.step() * jog_len;
    let (mut pts, last) = xarch_connect_pref(mid, to, Some(jog_dir), pref);
    let mut out = vec![mid];
    out.append(&mut pts);
    (out, last)
}

fn try_pattern(
    from: Point,
    pts: &[Point],
    incoming: Option<Dir8>,
) -> Option<(Vec<Point>, Option<Dir8>)> {
    let mut prev = from;
    let mut dir = incoming;
    let mut out = Vec::new();
    for &p in pts {
        if p == prev {
            continue;
        }
        let d = Dir8::of_vector(p - prev)?;
        if let Some(inc) = dir {
            if inc.angular_distance(d) > 2 {
                return None;
            }
        }
        out.push(p);
        prev = p;
        dir = Some(d);
    }
    Some((out, dir))
}

/// Realizes an A\* result into per-layer polylines and via placements.
///
/// `src`/`dst` are the terminal points; `dst` is appended after the last
/// tile entry. Returns `None` if the path is empty.
pub fn realize(result: &AstarResult, src: (WireLayer, Point), dst: (WireLayer, Point)) -> Option<RealizedNet> {
    if result.steps.is_empty() {
        return None;
    }
    let mut routes: Vec<(WireLayer, Polyline)> = Vec::new();
    let mut vias = Vec::new();

    let mut layer = src.0;
    let mut current: Vec<Point> = vec![src.1];
    let mut dir: Option<Dir8> = None;

    let extend_to = |current: &mut Vec<Point>, dir: &mut Option<Dir8>, target: Point| {
        let from = *current.last().expect("nonempty run");
        let (pts, d) = xarch_connect(from, target, *dir);
        current.extend(pts);
        *dir = d;
    };

    for step in &result.steps {
        if let Some((site, upper, lower)) = step.via {
            // Finish the current layer run at the via site.
            extend_to(&mut current, &mut dir, site);
            if current.len() >= 2 {
                let mut pl = Polyline::new(std::mem::take(&mut current));
                pl.simplify();
                routes.push((layer, pl));
            } else {
                current.clear();
            }
            vias.push((site, upper, lower));
            // Continue on the other layer from the site.
            layer = if layer == upper { lower } else { upper };
            current.push(site);
            dir = None;
        } else if step.entry != *current.last().expect("nonempty run") {
            extend_to(&mut current, &mut dir, step.entry);
        }
    }
    extend_to(&mut current, &mut dir, dst.1);
    debug_assert_eq!(layer, dst.0, "path must end on the destination layer");
    if current.len() >= 2 {
        let mut pl = Polyline::new(current);
        pl.simplify();
        routes.push((layer, pl));
    }
    Some(RealizedNet { routes, vias })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    fn check_polyline(from: Point, pts: &[Point]) {
        let mut all = vec![from];
        all.extend_from_slice(pts);
        let mut pl = Polyline::new(all);
        pl.simplify();
        pl.validate().unwrap_or_else(|e| panic!("invalid polyline {pl:?}: {e}"));
    }

    #[test]
    fn direct_moves() {
        for (to, expect_len) in [
            (p(10, 0), 1usize),
            (p(0, 10), 1),
            (p(10, 10), 1),
            (p(-10, 10), 1),
        ] {
            let (pts, dir) = xarch_connect(p(0, 0), to, None);
            assert_eq!(pts.len(), expect_len);
            assert!(dir.is_some());
            check_polyline(p(0, 0), &pts);
        }
    }

    #[test]
    fn diagonal_plus_straight() {
        let (pts, _) = xarch_connect(p(0, 0), p(10, 4), None);
        assert_eq!(pts.last(), Some(&p(10, 4)));
        check_polyline(p(0, 0), &pts);
        // Two segments.
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn incoming_direction_respected() {
        // Incoming east, target to the north-west-ish: the naive diagonal
        // NW start would be a 45° turn; must choose another pattern.
        let (pts, _) = xarch_connect(p(0, 0), p(-4, 10), Some(Dir8::E));
        check_polyline(p(0, 0), &pts);
        // The first move from (0,0) must be within 90° of east.
        let first = Dir8::of_vector(pts[0] - p(0, 0)).unwrap();
        assert!(Dir8::E.angular_distance(first) <= 2, "first dir {first}");
    }

    #[test]
    fn reverse_target_requires_jog() {
        // Incoming east, target due west: straight-back is a U-turn.
        let (pts, _) = xarch_connect(p(0, 0), p(-100, 0), Some(Dir8::E));
        check_polyline(p(0, 0), &pts);
        assert_eq!(pts.last(), Some(&p(-100, 0)));
        assert!(pts.len() >= 2, "must jog before reversing");
    }

    #[test]
    fn zero_move_is_empty() {
        let (pts, dir) = xarch_connect(p(5, 5), p(5, 5), Some(Dir8::N));
        assert!(pts.is_empty());
        assert_eq!(dir, Some(Dir8::N));
    }

    #[test]
    fn preference_rotations_all_legal_and_reach_target() {
        for pref in 0u8..4 {
            for (fx, fy, tx, ty) in [(0, 0, 10, 4), (0, 0, -7, 12), (3, 3, 3, -9), (5, 0, -5, 0)] {
                let (pts, _) = xarch_connect_pref(p(fx, fy), p(tx, ty), None, pref);
                assert_eq!(pts.last(), Some(&p(tx, ty)), "pref {pref}");
                check_polyline(p(fx, fy), &pts);
            }
        }
    }

    #[test]
    fn preference_changes_the_shape() {
        // pref 0: diagonal first; pref 1: straight first — different mid
        // points for an L-shaped displacement.
        let (a, _) = xarch_connect_pref(p(0, 0), p(10, 4), None, 0);
        let (b, _) = xarch_connect_pref(p(0, 0), p(10, 4), None, 1);
        assert_ne!(a, b);
        // pref 2: rectilinear horizontal first.
        let (c, _) = xarch_connect_pref(p(0, 0), p(10, 4), None, 2);
        assert_eq!(c[0], p(10, 0));
    }

    #[test]
    fn random_connections_always_legal() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let from = p(rng.gen_range(-50..50), rng.gen_range(-50..50));
            let to = p(rng.gen_range(-50..50), rng.gen_range(-50..50));
            let incoming = if rng.gen_bool(0.5) {
                Some(Dir8::from_index(rng.gen_range(0..8)))
            } else {
                None
            };
            let (pts, _) = xarch_connect(from, to, incoming);
            if from != to {
                assert_eq!(pts.last(), Some(&to));
            }
            // Prepend a unit step opposite the incoming direction so the
            // validator also checks the first-turn legality.
            let mut all = Vec::new();
            if let Some(inc) = incoming {
                all.push(from - inc.step() * 5);
            }
            all.push(from);
            all.extend_from_slice(&pts);
            let mut pl = Polyline::new(all);
            pl.simplify();
            pl.validate()
                .unwrap_or_else(|e| panic!("{from} -> {to} (incoming {incoming:?}): {e}; {pl:?}"));
        }
    }
}
