//! Cooperative cancellation for long-running searches.
//!
//! A [`CancelToken`] is the one shared flag a routing job, the flow
//! driver, and the innermost A\* expansion loop all observe. It carries
//! three independent stop conditions:
//!
//! - an **explicit cancel** (`cancel()`), set by a caller — typically a
//!   job server reacting to a client's cancel request;
//! - a **stage deadline**, re-armed by the flow at every stage boundary
//!   (the cooperative half of `RouterConfig::stage_budget`);
//! - a **job deadline**, armed once for the whole route call (a
//!   service-level wall-clock budget that survives stage re-arming).
//!
//! The token is `Arc`-shared and entirely atomic, so it stays coherent
//! across `catch_unwind` guards and worker threads; cloning shares state.
//!
//! ## Deterministic trips
//!
//! Wall-clock deadlines make bounded-termination *tests* flaky, so the
//! token also counts [`checkpoint`] calls and can be told to trip after
//! exactly `n` of them ([`trip_after_checks`]). The A\* loop checkpoints
//! once per `CHECK_INTERVAL` expansions (including expansion 0), giving
//! the invariant tests pin: after the trip at check `k`, the total
//! expansion count across every search on the token is at most
//! `k * CHECK_INTERVAL`.
//!
//! [`checkpoint`]: CancelToken::checkpoint
//! [`trip_after_checks`]: CancelToken::trip_after_checks

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many A\* expansions pass between consecutive cooperative
/// checkpoints. Small enough that a cancel lands within a few thousand
/// expansions (microseconds), large enough that the atomic loads never
/// show up in a profile.
pub const CHECK_INTERVAL: u64 = 4096;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Stage deadline in nanoseconds after `epoch`; 0 = unarmed.
    stage_deadline_nanos: AtomicU64,
    /// Job deadline in nanoseconds after `epoch`; 0 = unarmed.
    job_deadline_nanos: AtomicU64,
    /// Checkpoints observed so far.
    checks: AtomicU64,
    /// Trip `cancelled` when `checks` reaches this; 0 = disabled.
    trip_at: AtomicU64,
    epoch: Instant,
}

/// Shared cooperative cancellation flag (see the module docs).
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadlines, no check trip.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                stage_deadline_nanos: AtomicU64::new(0),
                job_deadline_nanos: AtomicU64::new(0),
                checks: AtomicU64::new(0),
                trip_at: AtomicU64::new(0),
                epoch: Instant::now(),
            }),
        }
    }

    /// Sets the explicit cancel flag. Idempotent; never unset.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](Self::cancel) was called (or a check trip
    /// fired).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    fn arm(&self, slot: &AtomicU64, budget: Option<Duration>) {
        let nanos = match budget {
            Some(b) => {
                let end = self.inner.epoch.elapsed() + b;
                // Saturate instead of wrapping; u64 nanos covers ~584 years.
                u64::try_from(end.as_nanos()).unwrap_or(u64::MAX).max(1)
            }
            None => 0,
        };
        slot.store(nanos, Ordering::Relaxed);
    }

    /// Arms (or with `None` clears) the stage deadline. The flow calls
    /// this at every stage boundary; the job deadline is untouched.
    pub fn arm_stage_deadline(&self, budget: Option<Duration>) {
        self.arm(&self.inner.stage_deadline_nanos, budget);
    }

    /// Arms (or with `None` clears) the job-level deadline. Survives
    /// stage re-arming; a job server sets it once per job.
    pub fn arm_job_deadline(&self, budget: Option<Duration>) {
        self.arm(&self.inner.job_deadline_nanos, budget);
    }

    fn past(&self, slot: &AtomicU64, now_nanos: u128) -> bool {
        let d = slot.load(Ordering::Relaxed);
        d != 0 && now_nanos >= u128::from(d)
    }

    /// True once either deadline (stage or job) has passed.
    pub fn deadline_exceeded(&self) -> bool {
        let now = self.inner.epoch.elapsed().as_nanos();
        self.past(&self.inner.stage_deadline_nanos, now)
            || self.past(&self.inner.job_deadline_nanos, now)
    }

    /// True when work should stop for any reason: explicit cancel, check
    /// trip, or a passed deadline.
    pub fn should_stop(&self) -> bool {
        self.is_cancelled() || self.deadline_exceeded()
    }

    /// Arranges for the token to cancel itself at the `n`-th future
    /// [`checkpoint`](Self::checkpoint) (1-based; `n = 1` trips at the
    /// very next checkpoint). The deterministic stand-in for a wall-clock
    /// deadline in bounded-termination tests and injected mid-search
    /// cancels. `0` disables the trip.
    pub fn trip_after_checks(&self, n: u64) {
        let base = self.inner.checks.load(Ordering::Relaxed);
        self.inner.trip_at.store(if n == 0 { 0 } else { base.saturating_add(n) }, Ordering::Relaxed);
    }

    /// One cooperative checkpoint: counts the call, fires a pending check
    /// trip, and reports whether work should stop. The A\* expansion loop
    /// calls this every [`CHECK_INTERVAL`] expansions.
    #[inline]
    pub fn checkpoint(&self) -> bool {
        let n = self.inner.checks.fetch_add(1, Ordering::Relaxed) + 1;
        let trip = self.inner.trip_at.load(Ordering::Relaxed);
        if trip != 0 && n >= trip {
            self.cancel();
        }
        self.should_stop()
    }

    /// Checkpoints observed so far (test observability).
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_quiet() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.deadline_exceeded());
        assert!(!t.should_stop());
        assert!(!t.checkpoint());
        assert_eq!(t.checks(), 1);
    }

    #[test]
    fn cancel_is_shared_and_sticky() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled() && t.should_stop());
    }

    #[test]
    fn stage_and_job_deadlines_are_independent() {
        let t = CancelToken::new();
        t.arm_stage_deadline(Some(Duration::ZERO));
        assert!(t.deadline_exceeded());
        t.arm_stage_deadline(None);
        assert!(!t.deadline_exceeded());
        t.arm_job_deadline(Some(Duration::ZERO));
        // Stage re-arming must not clear the job deadline.
        t.arm_stage_deadline(Some(Duration::from_secs(3600)));
        t.arm_stage_deadline(None);
        assert!(t.deadline_exceeded());
        t.arm_job_deadline(None);
        assert!(!t.deadline_exceeded());
    }

    #[test]
    fn check_trip_fires_at_exactly_n() {
        let t = CancelToken::new();
        t.trip_after_checks(3);
        assert!(!t.checkpoint());
        assert!(!t.checkpoint());
        assert!(t.checkpoint(), "third checkpoint must trip");
        assert!(t.is_cancelled());
        assert_eq!(t.checks(), 3);
    }

    #[test]
    fn trip_counts_from_now_not_from_zero() {
        let t = CancelToken::new();
        for _ in 0..5 {
            t.checkpoint();
        }
        t.trip_after_checks(2);
        assert!(!t.checkpoint());
        assert!(t.checkpoint());
    }
}
