//! Bucketed (calendar-queue) open list for the A\* hot path.
//!
//! A\* over the tile graph pushes monotonically non-decreasing `f` values
//! (the octagonal-distance heuristic is consistent), so a delta-stepping
//! style bucket array beats a binary heap: pushes are O(1) into the bucket
//! `floor(f / delta)`, and pops scan only the lowest non-empty bucket.
//!
//! Unlike classic delta-stepping, [`BucketQueue::pop`] is **exact**: it
//! returns the global minimum `(f_bits, id)` in lexicographic order —
//! bucket ranges are disjoint and ordered, and within the lowest bucket a
//! linear scan picks the minimum — so pop order (including ties, broken by
//! the smaller tile id) is identical to
//! `BinaryHeap<Reverse<(u64, u32)>>`. That equivalence is what keeps
//! layouts byte-reproducible and is locked by
//! `crates/tile/tests/bucket_queue.rs`.
//!
//! The queue is designed for reuse across consecutive searches:
//! [`BucketQueue::clear`] retains every bucket allocation, so steady-state
//! routing performs no per-net allocation here.

/// An exact-min bucket queue over `(f_bits, id)` keys.
///
/// `f_bits` must be the [`f64::to_bits`] image of a non-negative finite
/// cost, so bit order equals numeric order.
#[derive(Debug, Clone)]
pub struct BucketQueue {
    /// Bucket width in cost units (nm of wirelength).
    delta: f64,
    /// Cost at the lower edge of bucket 0; fixed by the first push after a
    /// clear (every later key clamps into bucket 0 if below it).
    base: f64,
    /// `buckets[i]` holds keys in `[base + i·delta, base + (i+1)·delta)`.
    buckets: Vec<Vec<(u64, u32)>>,
    /// Index of the lowest possibly non-empty bucket.
    cursor: usize,
    len: usize,
    peak: usize,
    primed: bool,
}

impl BucketQueue {
    /// An empty queue with the given bucket width (clamped to ≥ 1.0).
    pub fn new(delta: f64) -> Self {
        BucketQueue {
            delta: if delta.is_finite() && delta >= 1.0 { delta } else { 1.0 },
            base: 0.0,
            buckets: Vec::new(),
            cursor: 0,
            len: 0,
            peak: 0,
            primed: false,
        }
    }

    /// Empties the queue, retaining bucket allocations and the peak
    /// counter. Optionally re-tunes the bucket width for the next search.
    pub fn clear(&mut self, delta: Option<f64>) {
        if let Some(d) = delta {
            if d.is_finite() && d >= 1.0 {
                self.delta = d;
            }
        }
        for b in &mut self.buckets {
            b.clear();
        }
        self.cursor = 0;
        self.len = 0;
        self.primed = false;
    }

    /// Number of queued keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest queue length observed since construction (heap-peak
    /// diagnostic; survives [`BucketQueue::clear`]).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Resets the peak counter (start of a new measurement window).
    pub fn reset_peak(&mut self) {
        self.peak = 0;
    }

    #[inline]
    fn bucket_of(&self, f: f64) -> usize {
        if f <= self.base {
            return 0;
        }
        // Monotone in f, so cross-bucket order is preserved exactly.
        ((f - self.base) / self.delta) as usize
    }

    /// Queues `(f_bits, id)`.
    #[inline]
    pub fn push(&mut self, f_bits: u64, id: u32) {
        let f = f64::from_bits(f_bits);
        if !self.primed {
            self.base = f;
            self.primed = true;
            self.cursor = 0;
        }
        let idx = self.bucket_of(f);
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, Vec::new);
        }
        self.buckets[idx].push((f_bits, id));
        // A consistent heuristic never pushes below the cursor, but the
        // queue stays exact for arbitrary inputs (the equivalence tests
        // exercise fully random sequences).
        if idx < self.cursor {
            self.cursor = idx;
        }
        self.len += 1;
        self.peak = self.peak.max(self.len);
    }

    /// Removes and returns the minimum `(f_bits, id)` key, ties broken by
    /// the smaller id — exactly `BinaryHeap<Reverse<(u64, u32)>>::pop`.
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, u32)> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.cursor].is_empty() {
            self.cursor += 1;
        }
        let bucket = &mut self.buckets[self.cursor];
        let mut at = 0;
        for (i, key) in bucket.iter().enumerate().skip(1) {
            if *key < bucket[at] {
                at = i;
            }
        }
        let key = bucket.swap_remove(at);
        self.len -= 1;
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_heap_order_with_ties() {
        let mut q = BucketQueue::new(1000.0);
        let mut h: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let keys = [
            (5_000.0f64, 7u32),
            (5_000.0, 3),
            (100.0, 9),
            (99_999.5, 1),
            (100.0, 2),
            (0.0, 40),
        ];
        for (f, id) in keys {
            q.push(f.to_bits(), id);
            h.push(Reverse((f.to_bits(), id)));
        }
        while let Some(Reverse(want)) = h.pop() {
            assert_eq!(q.pop(), Some(want));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_retains_capacity_and_peak() {
        let mut q = BucketQueue::new(10.0);
        for i in 0..100u32 {
            q.push((i as f64 * 3.0).to_bits(), i);
        }
        assert_eq!(q.peak(), 100);
        q.clear(None);
        assert!(q.is_empty());
        assert_eq!(q.peak(), 100, "peak survives clear");
        q.push(7.0f64.to_bits(), 1);
        assert_eq!(q.pop(), Some((7.0f64.to_bits(), 1)));
    }

    #[test]
    fn push_below_base_still_pops_first() {
        let mut q = BucketQueue::new(50.0);
        q.push(10_000.0f64.to_bits(), 4);
        q.push(2.0f64.to_bits(), 8); // below the primed base
        assert_eq!(q.pop(), Some((2.0f64.to_bits(), 8)));
        assert_eq!(q.pop(), Some((10_000.0f64.to_bits(), 4)));
    }
}
