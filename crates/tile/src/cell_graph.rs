//! The fan-out grid graph: adjacency with boundary capacities and MST.

use info_geom::{euclid, Coord, Rect};

/// Adjacency graph over rectangular cells (fan-out grids).
///
/// Two cells are adjacent when they share a boundary segment of positive
/// length; the edge records the shared length, from which the paper's
/// capacity `cap(e)` — the number of wires that can simultaneously cross
/// the border — is derived by dividing by the wire pitch.
#[derive(Debug, Clone)]
pub struct CellGraph {
    cells: Vec<Rect>,
    /// `adj[i]` = list of `(neighbor, shared boundary length)`.
    adj: Vec<Vec<(usize, Coord)>>,
}

/// An edge of the MST over the cell graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MstEdge {
    /// One endpoint (cell index).
    pub a: usize,
    /// Other endpoint (cell index).
    pub b: usize,
    /// Center-to-center Euclidean length, used as the detour metric.
    pub length: f64,
    /// Shared boundary length in nm (capacity numerator).
    pub shared: Coord,
}

impl CellGraph {
    /// Builds adjacency over the given cells.
    pub fn build(cells: Vec<Rect>) -> Self {
        let n = cells.len();
        let mut adj = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (cells[i], cells[j]);
                let shared = shared_boundary(a, b);
                if shared > 0 {
                    adj[i].push((j, shared));
                    adj[j].push((i, shared));
                }
            }
        }
        CellGraph { cells, adj }
    }

    /// The cells.
    pub fn cells(&self) -> &[Rect] {
        &self.cells
    }

    /// Neighbors of a cell with shared boundary lengths.
    pub fn neighbors(&self, i: usize) -> &[(usize, Coord)] {
        &self.adj[i]
    }

    /// Index of the cell containing a point (ties broken by lowest index).
    pub fn cell_containing(&self, p: info_geom::Point) -> Option<usize> {
        self.cells.iter().position(|c| c.contains(p))
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the graph has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Prim's MST over the connected component containing cell 0 (the
    /// fan-out region is connected in practice; stray components simply
    /// stay out of the tree and their nets fall back to sequential
    /// routing).
    pub fn mst(&self) -> Vec<MstEdge> {
        if self.cells.is_empty() {
            return Vec::new();
        }
        let n = self.cells.len();
        let mut in_tree = vec![false; n];
        let mut edges = Vec::with_capacity(n.saturating_sub(1));
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize, usize, Coord)>> =
            std::collections::BinaryHeap::new();
        let push_edges = |from: usize,
                          heap: &mut std::collections::BinaryHeap<
            std::cmp::Reverse<(u64, usize, usize, Coord)>,
        >| {
            for &(to, shared) in &self.adj[from] {
                let w = euclid(self.cells[from].center(), self.cells[to].center());
                heap.push(std::cmp::Reverse((w.to_bits(), from, to, shared)));
            }
        };
        in_tree[0] = true;
        push_edges(0, &mut heap);
        while let Some(std::cmp::Reverse((wbits, from, to, shared))) = heap.pop() {
            if in_tree[to] {
                continue;
            }
            in_tree[to] = true;
            edges.push(MstEdge { a: from, b: to, length: f64::from_bits(wbits), shared });
            push_edges(to, &mut heap);
        }
        edges
    }

    /// Path between two cells along the MST, as a cell-index sequence.
    /// Returns `None` when the cells are in different components.
    pub fn mst_path(&self, mst: &[MstEdge], from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let n = self.cells.len();
        let mut tree_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in mst {
            tree_adj[e.a].push(e.b);
            tree_adj[e.b].push(e.a);
        }
        // BFS on the tree.
        let mut parent = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::from([from]);
        parent[from] = from;
        while let Some(u) = queue.pop_front() {
            if u == to {
                break;
            }
            for &v in &tree_adj[u] {
                if parent[v] == usize::MAX {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if parent[to] == usize::MAX {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = parent[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Length of the shared boundary between two disjoint-interior rectangles
/// (zero when they only touch at a corner or not at all).
fn shared_boundary(a: Rect, b: Rect) -> Coord {
    if a.hi.x == b.lo.x || b.hi.x == a.lo.x {
        // Side-by-side: vertical overlap.
        (a.hi.y.min(b.hi.y) - a.lo.y.max(b.lo.y)).max(0)
    } else if a.hi.y == b.lo.y || b.hi.y == a.lo.y {
        (a.hi.x.min(b.hi.x) - a.lo.x.max(b.lo.x)).max(0)
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_geom::Point;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn adjacency_with_shared_lengths() {
        // Three cells: two side by side, one on top of the first.
        let g = CellGraph::build(vec![r(0, 0, 10, 10), r(10, 0, 20, 10), r(0, 10, 10, 20)]);
        assert_eq!(g.neighbors(0), &[(1, 10), (2, 10)]);
        assert_eq!(g.neighbors(1), &[(0, 10)]);
        assert_eq!(g.neighbors(2), &[(0, 10)]);
    }

    #[test]
    fn corner_touch_is_not_adjacent() {
        let g = CellGraph::build(vec![r(0, 0, 10, 10), r(10, 10, 20, 20)]);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    fn partial_overlap_boundary() {
        let g = CellGraph::build(vec![r(0, 0, 10, 10), r(10, 5, 20, 25)]);
        assert_eq!(g.neighbors(0), &[(1, 5)]);
    }

    #[test]
    fn mst_spans_connected_cells() {
        // A 2x2 grid of cells: MST has 3 edges.
        let g = CellGraph::build(vec![
            r(0, 0, 10, 10),
            r(10, 0, 20, 10),
            r(0, 10, 10, 20),
            r(10, 10, 20, 20),
        ]);
        let mst = g.mst();
        assert_eq!(mst.len(), 3);
        // Path between diagonal corners has 3 cells (through a shared
        // neighbor) or 4 depending on tree shape; must exist either way.
        let path = g.mst_path(&mst, 0, 3).unwrap();
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), 3);
        assert!(path.len() >= 2 && path.len() <= 4);
    }

    #[test]
    fn mst_path_same_cell() {
        let g = CellGraph::build(vec![r(0, 0, 10, 10)]);
        assert_eq!(g.mst_path(&[], 0, 0), Some(vec![0]));
    }

    #[test]
    fn disconnected_components() {
        let g = CellGraph::build(vec![r(0, 0, 10, 10), r(50, 50, 60, 60)]);
        let mst = g.mst();
        assert!(mst.is_empty());
        assert_eq!(g.mst_path(&mst, 0, 1), None);
    }

    #[test]
    fn cell_containing_points() {
        let g = CellGraph::build(vec![r(0, 0, 10, 10), r(10, 0, 20, 10)]);
        assert_eq!(g.cell_containing(Point::new(5, 5)), Some(0));
        assert_eq!(g.cell_containing(Point::new(15, 5)), Some(1));
        assert_eq!(g.cell_containing(Point::new(10, 5)), Some(0)); // boundary tie → lowest
        assert_eq!(g.cell_containing(Point::new(99, 99)), None);
    }
}
