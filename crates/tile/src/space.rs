//! The multi-layer octagonal-tile routing space (§III-C).
//!
//! The die is cut into uniform **global cells** (the paper uses 30 × 30).
//! Inside each global cell, on each wire layer, **frames** are derived by
//! extending horizontal/vertical cut lines from component corners and wire
//! endpoints; each frame is then split by the diagonal wires crossing it
//! into **octagonal tiles**. Tiles overlapped by a blockage carry blocker
//! tags; A\* may still traverse tiles whose every blocker belongs to the
//! net being routed (so a net can reach its own pads and vias).
//!
//! Via candidate sites are inserted per global cell into the largest free
//! tile and projected to the adjacent layer (§III-C3); the router
//! materializes a real [`info_model::Via`] when a path uses one.

use info_geom::{Coord, GridIndex, Octagon, Orient4, Point, Rect, Segment, XLine};
use info_model::{Layout, NetId, Package, WireLayer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone source of space revisions: every (re)build of any space takes
/// a fresh value, so two spaces with equal revisions hold identical tiles
/// (a clone restored over a mutated space genuinely is the cloned state).
static REVISION: AtomicU64 = AtomicU64::new(1);

/// Identifier of a tile in a [`RoutingSpace`] (invalidated by rebuilds of
/// the tile's global cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileId(pub u32);

/// What occupies (part of) a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Blocker {
    /// Obstacle or foreign fixed geometry: never passable.
    Hard,
    /// Geometry owned by a net (pad, via, wire band): passable only when
    /// routing that same net.
    Net(NetId),
}

/// One octagonal tile on a wire layer.
#[derive(Debug, Clone)]
pub struct TileNode {
    /// Wire layer.
    pub layer: WireLayer,
    /// Global cell coordinates `(cx, cy)`.
    pub cell: (usize, usize),
    /// Shape of the tile.
    pub shape: Octagon,
    /// Blocker tags (empty = free space).
    pub blockers: Vec<Blocker>,
}

impl TileNode {
    /// Whether a net may route through this tile.
    pub fn passable_for(&self, net: NetId) -> bool {
        self.blockers.iter().all(|b| matches!(b, Blocker::Net(n) if *n == net))
    }

    /// Whether the tile is completely free.
    pub fn is_free(&self) -> bool {
        self.blockers.is_empty()
    }
}

/// A candidate via site connecting two adjacent wire layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViaSite {
    /// Center position.
    pub at: Point,
    /// Upper wire layer of the span.
    pub upper: WireLayer,
    /// Lower wire layer (`upper + 1`).
    pub lower: WireLayer,
}

/// Tuning parameters for space construction.
#[derive(Debug, Clone, Copy)]
pub struct SpaceConfig {
    /// Global cells along x (the paper's default grid is 30 × 30).
    pub cells_x: usize,
    /// Global cells along y.
    pub cells_y: usize,
    /// Center-line clearance: blockages are inflated by this margin so a
    /// wire centerline anywhere in free space is spacing-legal
    /// (`min_spacing + wire_width` covers wire-vs-shape worst case).
    pub clearance: Coord,
    /// Tiles thinner than this are impassable.
    pub min_thickness: Coord,
    /// Via octagon width.
    pub via_width: Coord,
    /// Extra path cost charged per via, in nm of equivalent wirelength.
    pub via_cost: f64,
    /// Reuse epoch-stamped net-agnostic adjacency lists across neighbor
    /// enumerations (see [`AdjCache`]). Lossless; `false` re-does the
    /// boundary/crossing geometry on every enumeration (the ablation
    /// baseline).
    pub adjacency_cache: bool,
}

impl SpaceConfig {
    /// Derives a configuration from a package's design rules with the
    /// paper's 30 × 30 global-cell default.
    pub fn from_package(package: &Package) -> Self {
        let r = package.rules();
        SpaceConfig {
            cells_x: 30,
            cells_y: 30,
            clearance: r.min_spacing + r.wire_width,
            min_thickness: r.min_spacing + r.wire_width,
            via_width: r.via_width,
            via_cost: 4.0 * r.via_width as f64,
            adjacency_cache: true,
        }
    }
}

/// A planar adjacency between two tiles.
#[derive(Debug, Clone, Copy)]
pub struct PlanarEdge {
    /// Destination tile.
    pub to: TileId,
    /// The open crossing interval on the shared boundary.
    pub crossing: Segment,
}

/// One net-agnostic adjacency record: a neighbor sharing a positive-length
/// boundary with the owning tile, plus every wire interval lying along
/// that boundary (tagged with the wire's net so per-net queries can drop
/// the querying net's own wires). Cached per tile in [`AdjCache`].
#[derive(Debug, Clone)]
struct RawEdge {
    to: TileId,
    /// The full shared-boundary segment (before wire subtraction).
    seg: Segment,
    /// Covered parameter intervals `(net, lo, hi)` of `seg`, clamped to
    /// `[0, 1]` and stably sorted by `lo` — the same order a per-net scan
    /// followed by a stable sort would produce.
    covered: Vec<(NetId, f64, f64)>,
}

/// Lazily built per-tile adjacency lists, the A\* hot path's amortization
/// of the octagon-intersection work in [`RoutingSpace::planar_neighbors`].
///
/// Entries are pure functions of the two cells' tiles and wires, so each
/// is stamped with the **adjacency epoch** of its owning cell at build
/// time: [`RoutingSpace::rebuild_cell`] bumps the epoch of the rebuilt
/// cell and its 4-adjacent ring (an O(ring) stamp write instead of an
/// O(tiles) entry sweep), and a lookup treats a mismatched stamp as a
/// miss. Tile ids are never reused by rebuilds (retired slots stay
/// `None`, and their entries are dropped when the cell retires them), so
/// a live entry can only describe the current tile.
#[derive(Debug, Default)]
struct AdjCache {
    state: Mutex<AdjState>,
}

#[derive(Debug, Default, Clone)]
struct AdjState {
    /// Tile id → (owning cell's adjacency epoch at build, edges).
    map: HashMap<u32, (u64, Arc<Vec<RawEdge>>)>,
    /// Legality-cache telemetry: lookups answered from a valid entry.
    hits: u64,
    /// Lookups that rebuilt the entry (first touch or stale stamp).
    misses: u64,
}

impl AdjCache {
    fn lock(&self) -> std::sync::MutexGuard<'_, AdjState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Clone for AdjCache {
    fn clone(&self) -> Self {
        AdjCache { state: Mutex::new(self.lock().clone()) }
    }
}

/// The tile space over all layers.
#[derive(Debug, Clone)]
pub struct RoutingSpace {
    cfg: SpaceConfig,
    die: Rect,
    layers: usize,
    tiles: Vec<Option<TileNode>>,
    /// `cell_index(layer, cx, cy)` → tile ids in that cell.
    cell_tiles: Vec<Vec<TileId>>,
    /// Wire segments per (layer, cell), for adjacency blocking.
    cell_wires: Vec<Vec<(NetId, Segment)>>,
    /// Candidate via sites per cell column-major; refreshed on rebuild.
    via_sites: Vec<Vec<ViaSite>>,
    /// Lazily built planar-adjacency lists (see [`AdjCache`]).
    adjacency: AdjCache,
    /// Per `(layer, cell)`: spatial index over the cell's tile bboxes, in
    /// `cell_tiles` order, so adjacency builds query the handful of tiles
    /// near a bbox instead of scanning the whole cell (dense cells hold
    /// thousands of tiles). `Arc` so snapshots clone by reference; a
    /// rebuild installs a fresh index rather than mutating the shared one.
    tile_index: Vec<Arc<GridIndex<TileId>>>,
    /// Per `(layer, cell)`: adjacency epoch, bumped when the cell or a
    /// 4-adjacent cell rebuilds. [`AdjCache`] entries are valid only while
    /// their stamp matches their cell's epoch.
    adj_epoch: Vec<u64>,
    /// Source of fresh adjacency epochs (per space; clones keep counting).
    epoch_counter: u64,
    /// Monotone state tag: two spaces with equal revisions are identical.
    /// Search-side caches (the per-target heuristic cache) key on it.
    revision: u64,
    /// ALT landmark tables for the current sequential stage (see
    /// [`crate::landmarks`]); `None` keeps the heuristic purely
    /// geometric. Snapshots and restores share the tables by `Arc` —
    /// they stay valid for the whole stage by blockage monotonicity.
    alt: Option<Arc<crate::landmarks::Landmarks>>,
    /// Negotiated-congestion cost layers (see [`crate::congestion`]);
    /// `None` keeps edge costs purely geometric. Boxed and owned by
    /// value — unlike the landmarks, these fields are *mutable* stage
    /// state, and the rip-up pass's snapshot/restore-by-value must
    /// capture them (an `Arc` would alias mutations across snapshots).
    congestion: Option<Box<crate::congestion::CongestionMap>>,
}

/// Per-rebuild spatial indexes over the package and layout geometry, so
/// each cell rebuild queries only nearby items instead of scanning every
/// pad, obstacle, via, and wire in the design.
///
/// Built once per [`RoutingSpace::build`] / [`RoutingSpace::rebuild_dirty`]
/// call (O(geometry)), then queried per rebuilt cell (O(local)). All
/// indexes are filled in the same iteration order the naive scans used —
/// and [`GridIndex::query`] returns ids in insertion order — so the
/// blockage lists, and therefore the tiles, are identical to the scans'.
struct GeomScratch {
    /// Pad slot → `package.pads()[slot]`, keyed by pad bbox.
    pads: GridIndex<usize>,
    /// Obstacle slot → `package.obstacles()[slot]`, keyed by rect.
    obstacles: GridIndex<usize>,
    /// Via `(net, shape, top, bottom)`, keyed by shape bbox.
    vias: GridIndex<(NetId, Octagon, WireLayer, WireLayer)>,
    /// Per wire layer: route segments `(net, seg)`, keyed by segment bbox.
    route_segs: Vec<GridIndex<(NetId, Segment)>>,
    /// Net of each pad (by pad slot), for blocker tags and escape keepouts.
    pad_nets: Vec<Option<NetId>>,
}

impl GeomScratch {
    fn build(package: &Package, layout: &Layout, layers: usize) -> Self {
        let die = package.die();
        let mut pads = GridIndex::with_capacity_hint(die, package.pads().len());
        for (i, p) in package.pads().iter().enumerate() {
            pads.insert(p.bbox(), i);
        }
        let mut obstacles = GridIndex::with_capacity_hint(die, package.obstacles().len());
        for (i, o) in package.obstacles().iter().enumerate() {
            obstacles.insert(o.rect, i);
        }
        let mut vias = GridIndex::with_capacity_hint(die, layout.via_count());
        for v in layout.vias() {
            let shape = v.shape();
            vias.insert(shape.bbox(), (v.net, shape, v.top, v.bottom));
        }
        let mut route_segs: Vec<GridIndex<(NetId, Segment)>> = (0..layers)
            .map(|_| GridIndex::with_capacity_hint(die, layout.route_count() * 2))
            .collect();
        for r in layout.routes() {
            let idx = &mut route_segs[r.layer.index()];
            for seg in r.path.segments() {
                let (lo, hi) = seg.bbox();
                idx.insert(Rect::new(lo, hi), (r.net, seg));
            }
        }
        let mut pad_nets = vec![None; package.pads().len()];
        for n in package.nets() {
            pad_nets[n.a.index()] = Some(n.id);
            pad_nets[n.b.index()] = Some(n.id);
        }
        GeomScratch { pads, obstacles, vias, route_segs, pad_nets }
    }
}

impl RoutingSpace {
    /// Builds the space from the current layout.
    pub fn build(package: &Package, layout: &Layout, cfg: SpaceConfig) -> Self {
        let layers = package.wire_layer_count();
        let ncells = cfg.cells_x * cfg.cells_y;
        // Every cell starts on one shared empty placeholder index; the
        // first rebuild of a cell installs its own Arc.
        let empty_index = Arc::new(GridIndex::with_grid(package.die(), 1, 1));
        let mut space = RoutingSpace {
            cfg,
            die: package.die(),
            layers,
            tiles: Vec::new(),
            cell_tiles: vec![Vec::new(); ncells * layers],
            cell_wires: vec![Vec::new(); ncells * layers],
            via_sites: vec![Vec::new(); ncells],
            adjacency: AdjCache::default(),
            tile_index: vec![empty_index; ncells * layers],
            adj_epoch: vec![0; ncells * layers],
            epoch_counter: 0,
            revision: REVISION.fetch_add(1, Ordering::Relaxed),
            alt: None,
            congestion: None,
        };
        let mut scratch = GeomScratch::build(package, layout, layers);
        for cy in 0..cfg.cells_y {
            for cx in 0..cfg.cells_x {
                space.rebuild_cell(package, layout, &mut scratch, cx, cy);
            }
        }
        space
    }

    /// Number of wire layers.
    pub fn layer_count(&self) -> usize {
        self.layers
    }

    /// Configuration in effect.
    pub fn config(&self) -> &SpaceConfig {
        &self.cfg
    }

    /// Upper bound on live tile ids: every `TileId` is `< tile_slots()`.
    /// Search scratch arrays (stamps, g-values, parents) are sized by this.
    pub fn tile_slots(&self) -> usize {
        self.tiles.len()
    }

    /// The space's state revision: strictly fresh after every rebuild, and
    /// equal only between value-identical spaces (clones/restores). Caches
    /// outside the space key their validity on it.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Installs (or clears) the stage's ALT landmark tables. Bumps the
    /// revision so heuristic caches keyed on it cannot mix values
    /// computed with and without the tables.
    pub fn set_landmarks(&mut self, lm: Option<Arc<crate::landmarks::Landmarks>>) {
        self.alt = lm;
        self.revision = REVISION.fetch_add(1, Ordering::Relaxed);
    }

    /// The stage's ALT landmark tables, when installed.
    #[inline]
    pub fn landmarks(&self) -> Option<&Arc<crate::landmarks::Landmarks>> {
        self.alt.as_ref()
    }

    /// Installs (or clears) the negotiated-congestion cost layers. Bumps
    /// the revision: congestion only shifts edge costs `g` (never the
    /// geometric heuristic), but a fresh tag keeps every revision-keyed
    /// cache conservatively scoped to one cost regime.
    pub fn set_congestion(&mut self, map: Option<crate::congestion::CongestionMap>) {
        self.congestion = map.map(Box::new);
        self.revision = REVISION.fetch_add(1, Ordering::Relaxed);
    }

    /// The congestion cost layers, when installed.
    #[inline]
    pub fn congestion(&self) -> Option<&crate::congestion::CongestionMap> {
        self.congestion.as_deref()
    }

    /// Mutable access to the congestion cost layers (the negotiation
    /// driver escalates history and refreshes present counts between
    /// iterations; no search runs concurrently with these updates).
    pub fn congestion_mut(&mut self) -> Option<&mut crate::congestion::CongestionMap> {
        self.congestion.as_deref_mut()
    }

    /// Occupancy of one `(layer, cell)`: `(blocked, total)` live tiles,
    /// where a blocked tile carries at least one blocker. The ordering
    /// features of the negotiation driver read this as a cheap local
    /// congestion estimate.
    pub fn cell_occupancy(&self, layer: WireLayer, cx: usize, cy: usize) -> (usize, usize) {
        let ids = self.tiles_in_cell(layer, cx, cy);
        let blocked = ids.iter().filter(|&&id| !self.tile(id).is_free()).count();
        (blocked, ids.len())
    }

    /// The rectangle of global cell `(cx, cy)`.
    pub fn cell_rect(&self, cx: usize, cy: usize) -> Rect {
        let w = self.die.width() as i128;
        let h = self.die.height() as i128;
        let x0 = self.die.lo.x + (w * cx as i128 / self.cfg.cells_x as i128) as Coord;
        let x1 = self.die.lo.x + (w * (cx + 1) as i128 / self.cfg.cells_x as i128) as Coord;
        let y0 = self.die.lo.y + (h * cy as i128 / self.cfg.cells_y as i128) as Coord;
        let y1 = self.die.lo.y + (h * (cy + 1) as i128 / self.cfg.cells_y as i128) as Coord;
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    fn cell_of_point(&self, p: Point) -> Option<(usize, usize)> {
        if !self.die.contains(p) {
            return None;
        }
        let w = self.die.width().max(1) as i128;
        let h = self.die.height().max(1) as i128;
        let cx = ((p.x - self.die.lo.x) as i128 * self.cfg.cells_x as i128 / w) as usize;
        let cy = ((p.y - self.die.lo.y) as i128 * self.cfg.cells_y as i128 / h) as usize;
        Some((cx.min(self.cfg.cells_x - 1), cy.min(self.cfg.cells_y - 1)))
    }

    #[inline]
    fn cell_index(&self, layer: usize, cx: usize, cy: usize) -> usize {
        (layer * self.cfg.cells_y + cy) * self.cfg.cells_x + cx
    }

    /// Tile lookup.
    pub fn tile(&self, id: TileId) -> &TileNode {
        self.tiles[id.0 as usize].as_ref().expect("stale tile id")
    }

    /// All live tiles (diagnostics).
    pub fn live_tiles(&self) -> impl Iterator<Item = (TileId, &TileNode)> {
        self.tiles
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (TileId(i as u32), t)))
    }

    /// Tiles of one global cell on one layer.
    pub fn tiles_in_cell(&self, layer: WireLayer, cx: usize, cy: usize) -> &[TileId] {
        &self.cell_tiles[self.cell_index(layer.index(), cx, cy)]
    }

    /// Candidate via sites in a cell.
    pub fn via_sites(&self, cx: usize, cy: usize) -> &[ViaSite] {
        &self.via_sites[cy * self.cfg.cells_x + cx]
    }

    /// The tile containing `p` on `layer` that is passable for `net`
    /// (free tiles preferred, then net-owned ones).
    pub fn tile_at(&self, layer: WireLayer, p: Point, net: NetId) -> Option<TileId> {
        let (cx, cy) = self.cell_of_point(p)?;
        let ids = self.tiles_in_cell(layer, cx, cy);
        let mut owned: Option<TileId> = None;
        for &id in ids {
            let t = self.tile(id);
            if t.shape.contains(p) {
                if t.is_free() {
                    return Some(id);
                }
                if t.passable_for(net) && owned.is_none() {
                    owned = Some(id);
                }
            }
        }
        owned
    }

    /// Rebuilds every global cell whose rectangle intersects `dirty`
    /// (inflated by the clearance), refreshing tiles and via sites.
    /// Returns the `(cx, cy)` cells that were rebuilt, in row-major order
    /// (the dirty set the parallel router intersects against read sets).
    pub fn rebuild_dirty(
        &mut self,
        package: &Package,
        layout: &Layout,
        dirty: Rect,
    ) -> Vec<(usize, usize)> {
        self.rebuild_dirty_multi(package, layout, std::slice::from_ref(&dirty))
    }

    /// Rebuilds the union of the cells touched by each rect in `dirty`
    /// (each inflated by the clearance), visiting every affected cell
    /// exactly once in row-major order. Returns the rebuilt cells.
    pub fn rebuild_dirty_multi(
        &mut self,
        package: &Package,
        layout: &Layout,
        dirty: &[Rect],
    ) -> Vec<(usize, usize)> {
        let margin = self.cfg.clearance + self.cfg.via_width;
        let areas: Vec<Rect> = dirty.iter().map(|r| r.inflate(margin)).collect();
        let mut cells = Vec::new();
        for cy in 0..self.cfg.cells_y {
            for cx in 0..self.cfg.cells_x {
                let rect = self.cell_rect(cx, cy);
                if areas.iter().any(|a| rect.intersects(*a)) {
                    cells.push((cx, cy));
                }
            }
        }
        if cells.is_empty() {
            return cells;
        }
        let mut scratch = GeomScratch::build(package, layout, self.layers);
        for &(cx, cy) in &cells {
            self.rebuild_cell(package, layout, &mut scratch, cx, cy);
        }
        self.revision = REVISION.fetch_add(1, Ordering::Relaxed);
        cells
    }

    /// The global cell containing `p`, if inside the die.
    pub fn cell_of(&self, p: Point) -> Option<(usize, usize)> {
        self.cell_of_point(p)
    }

    /// Every global cell whose rectangle intersects `area`, row-major.
    pub fn cells_touching(&self, area: Rect) -> Vec<(usize, usize)> {
        let mut cells = Vec::new();
        for cy in 0..self.cfg.cells_y {
            for cx in 0..self.cfg.cells_x {
                if self.cell_rect(cx, cy).intersects(area) {
                    cells.push((cx, cy));
                }
            }
        }
        cells
    }

    /// Rebuilds one global cell across all layers plus its via sites.
    fn rebuild_cell(
        &mut self,
        package: &Package,
        layout: &Layout,
        scratch: &mut GeomScratch,
        cx: usize,
        cy: usize,
    ) {
        // Adjacency lists of this cell's tiles (about to be retired) and
        // of every tile in a 4-adjacent cell (their cross-border edges
        // reference the tiles being replaced) become stale now.
        self.invalidate_adjacency(cx, cy);
        let cell = self.cell_rect(cx, cy);
        let pad_nets = &scratch.pad_nets;
        for layer_idx in 0..self.layers {
            let layer = WireLayer(layer_idx as u8);
            let idx = self.cell_index(layer_idx, cx, cy);
            // Retire old tiles, dropping their cached adjacency (their ids
            // are never reused, so the entries could only leak).
            let retired = std::mem::take(&mut self.cell_tiles[idx]);
            if !retired.is_empty() {
                let mut adj = self.adjacency.lock();
                for id in &retired {
                    adj.map.remove(&id.0);
                }
            }
            for id in retired {
                self.tiles[id.0 as usize] = None;
            }
            self.cell_wires[idx].clear();

            // --- Collect geometry relevant to this cell & layer.
            let reach = self.cfg.clearance;
            let probe = cell.inflate(reach + self.cfg.via_width);
            let mut blockages: Vec<(Blocker, Octagon)> = Vec::new();
            let mut xcuts: Vec<Coord> = vec![cell.lo.x, cell.hi.x];
            let mut ycuts: Vec<Coord> = vec![cell.lo.y, cell.hi.y];
            let mut diag_lines: Vec<XLine> = Vec::new();
            let mut wires: Vec<(NetId, Segment)> = Vec::new();

            // Cuts are taken at *inflated* blockage boundaries so that the
            // clearance band around each blocker occupies its own tiles
            // and never poisons surrounding free space.
            //
            // Each scratch query returns entry ids in insertion (= package /
            // layout iteration) order and over-approximates the original
            // intersection predicate, which is re-applied exactly below —
            // so blockage and cut lists match the full scans byte for byte.
            for id in scratch.obstacles.query(probe.inflate(reach)) {
                let o = &package.obstacles()[*scratch.obstacles.get(id).expect("live entry").1];
                if o.layer == layer && o.rect.inflate(reach).intersects(probe) {
                    let shape = Octagon::from_rect(o.rect).inflate(reach);
                    let inf = o.rect.inflate(reach);
                    xcuts.extend([o.rect.lo.x, o.rect.hi.x, inf.lo.x, inf.hi.x]);
                    ycuts.extend([o.rect.lo.y, o.rect.hi.y, inf.lo.y, inf.hi.y]);
                    blockages.push((Blocker::Hard, shape));
                }
            }
            // Pad keepouts reach at most 2×clearance (escape lanes below),
            // so probe that superset and re-check the exact reach per pad.
            for id in scratch.pads.query(probe.inflate(reach * 2)) {
                let p = &package.pads()[*scratch.pads.get(id).expect("live entry").1];
                // Pads of still-unrouted nets carry an extra keepout so a
                // foreign wire cannot seal off their escape lane before
                // their own net gets its chance.
                let owner = pad_nets[p.id.index()];
                let needs_escape =
                    owner.is_some_and(|n| !layout.has_geometry(n));
                let pad_reach = if needs_escape { reach * 2 } else { reach };
                if package.pad_layer(p.id) == layer
                    && p.bbox().inflate(pad_reach).intersects(probe)
                {
                    let shape = p.shape().inflate(pad_reach);
                    let bb = p.bbox();
                    let inf = bb.inflate(pad_reach);
                    xcuts.extend([bb.lo.x, bb.hi.x, inf.lo.x, inf.hi.x]);
                    ycuts.extend([bb.lo.y, bb.hi.y, inf.lo.y, inf.hi.y]);
                    let tag = match owner {
                        Some(n) => Blocker::Net(n),
                        None => Blocker::Hard,
                    };
                    blockages.push((tag, shape));
                }
            }
            for id in scratch.vias.query(probe.inflate(reach)) {
                let &(net, shape, top, bottom) = scratch.vias.get(id).expect("live entry").1;
                if layer >= top && layer <= bottom {
                    let bb = shape.bbox();
                    if bb.inflate(reach).intersects(probe) {
                        let inf = bb.inflate(reach);
                        xcuts.extend([bb.lo.x, bb.hi.x, inf.lo.x, inf.hi.x]);
                        ycuts.extend([bb.lo.y, bb.hi.y, inf.lo.y, inf.hi.y]);
                        blockages.push((Blocker::Net(net), shape.inflate(reach)));
                    }
                }
            }
            let diag_reach = ((reach as f64) * info_geom::SQRT2).ceil() as Coord;
            {
                let seg_index = &mut scratch.route_segs[layer_idx];
                for id in seg_index.query(probe.inflate(reach)) {
                    let &(net, seg) = seg_index.get(id).expect("live entry").1;
                    let (lo, hi) = seg.bbox();
                    if !Rect::new(lo, hi).inflate(reach).intersects(probe) {
                        continue;
                    }
                    wires.push((net, seg));
                    // The wire's clearance band is carved out as its own
                    // strip of tiles: cut at the conductor line and at the
                    // band edges (± clearance), plus endpoint caps.
                    for p in [seg.a, seg.b] {
                        xcuts.extend([p.x - reach, p.x, p.x + reach]);
                        ycuts.extend([p.y - reach, p.y, p.y + reach]);
                    }
                    match seg.orient() {
                        Some(Orient4::H) => {
                            ycuts.extend([seg.a.y - reach, seg.a.y + reach]);
                        }
                        Some(Orient4::V) => {
                            xcuts.extend([seg.a.x - reach, seg.a.x + reach]);
                        }
                        Some(o @ (Orient4::D45 | Orient4::D135)) => {
                            let line = XLine::through(seg.a, o);
                            diag_lines.push(line);
                            diag_lines.push(XLine::new(o, line.c() - diag_reach));
                            diag_lines.push(XLine::new(o, line.c() + diag_reach));
                        }
                        None => {}
                    }
                    // Band blockage: the octagon hull of the segment,
                    // inflated by the clearance.
                    let hull = Octagon::from_bounds(
                        seg.a.x.min(seg.b.x),
                        seg.a.x.max(seg.b.x),
                        seg.a.y.min(seg.b.y),
                        seg.a.y.max(seg.b.y),
                        seg.a.sum().min(seg.b.sum()),
                        seg.a.sum().max(seg.b.sum()),
                        seg.a.diff().min(seg.b.diff()),
                        seg.a.diff().max(seg.b.diff()),
                    );
                    blockages.push((Blocker::Net(net), hull.inflate(reach)));
                }
            }
            self.cell_wires[idx] = wires.clone();

            // --- Frames: rectangular partition of the cell by the cuts.
            xcuts.retain(|&x| x >= cell.lo.x && x <= cell.hi.x);
            ycuts.retain(|&y| y >= cell.lo.y && y <= cell.hi.y);
            xcuts.sort_unstable();
            xcuts.dedup();
            ycuts.sort_unstable();
            ycuts.dedup();

            // Duplicate diagonal lines (shared clearance-band edges of
            // collinear wires) are dropped: clipping by the same line twice
            // is a no-op, so the resulting pieces — and their order — are
            // identical, at a fraction of the clip work.
            {
                let mut seen: Vec<XLine> = Vec::with_capacity(diag_lines.len());
                diag_lines.retain(|l| {
                    if seen.contains(l) {
                        false
                    } else {
                        seen.push(*l);
                        true
                    }
                });
            }
            // Blockage bboxes, computed once: an octagon can only reach a
            // frame (or tile piece) whose bbox its own bbox touches, so the
            // exact intersection below runs on the handful of nearby
            // blockages instead of the cell's whole list.
            let blk_bbox: Vec<Rect> = blockages.iter().map(|(_, oct)| oct.bbox()).collect();

            // Partition frames into completely free rectangles (merged to
            // fight fragmentation, per Lee et al.) and frames needing the
            // full split/tag pipeline. A busy frame carries the subset of
            // diagonal lines that actually cross it — every other line
            // would leave its pieces untouched.
            let mut free_frames: Vec<Rect> = Vec::new();
            // Frames fully swallowed by a single blockage merge per tag.
            let mut swallowed: std::collections::HashMap<Blocker, Vec<Rect>> =
                std::collections::HashMap::new();
            let mut busy_frames: Vec<(Rect, Vec<XLine>)> = Vec::new();
            for wx in xcuts.windows(2) {
                for wy in ycuts.windows(2) {
                    let frame = Rect::new(Point::new(wx[0], wy[0]), Point::new(wx[1], wy[1]));
                    if frame.width() == 0 || frame.height() == 0 {
                        continue;
                    }
                    let crossing: Vec<XLine> = diag_lines
                        .iter()
                        .filter(|l| {
                            let evals = frame.corners().map(|p| l.eval(p));
                            evals.iter().any(|&e| e > 0) && evals.iter().any(|&e| e < 0)
                        })
                        .copied()
                        .collect();
                    if !crossing.is_empty() {
                        busy_frames.push((frame, crossing));
                        continue;
                    }
                    let hits: Vec<&(Blocker, Octagon)> = blockages
                        .iter()
                        .zip(&blk_bbox)
                        .filter(|((_, oct), bb)| {
                            frame.intersects(**bb) && {
                                let ix = Octagon::from_rect(frame).intersection(oct);
                                !ix.is_empty() && ix.area() > 0
                            }
                        })
                        .map(|(b, _)| b)
                        .collect();
                    if hits.is_empty() {
                        free_frames.push(frame);
                    } else if hits.len() == 1
                        && frame.corners().iter().all(|&p| hits[0].1.contains(p))
                    {
                        swallowed.entry(hits[0].0).or_default().push(frame);
                    } else {
                        busy_frames.push((frame, Vec::new()));
                    }
                }
            }

            let mut new_ids: Vec<TileId> = Vec::new();
            for rect in strip_merge(free_frames) {
                let id = TileId(self.tiles.len() as u32);
                self.tiles.push(Some(TileNode {
                    layer,
                    cell: (cx, cy),
                    shape: Octagon::from_rect(rect),
                    blockers: Vec::new(),
                }));
                new_ids.push(id);
            }
            let mut tags: Vec<Blocker> = swallowed.keys().copied().collect();
            tags.sort_by_key(|t| match t {
                Blocker::Hard => (0u8, 0u32),
                Blocker::Net(n) => (1, n.0),
            });
            for tag in tags {
                for rect in strip_merge(swallowed.remove(&tag).expect("key exists")) {
                    let id = TileId(self.tiles.len() as u32);
                    self.tiles.push(Some(TileNode {
                        layer,
                        cell: (cx, cy),
                        shape: Octagon::from_rect(rect),
                        blockers: vec![tag],
                    }));
                    new_ids.push(id);
                }
            }
            for (frame, crossing) in busy_frames {
                // --- Split the frame by the diagonal wires crossing it.
                // Lines that miss the frame cannot split any piece inside
                // it, so only the crossing subset is clipped against.
                let mut pieces = vec![Octagon::from_rect(frame)];
                for line in &crossing {
                    let mut next = Vec::with_capacity(pieces.len() + 1);
                    for piece in pieces {
                        let lo = piece.clip_halfplane(*line, true);
                        let hi = piece.clip_halfplane(*line, false);
                        let lo_ok = !lo.is_empty() && lo.area() > 0;
                        let hi_ok = !hi.is_empty() && hi.area() > 0;
                        if lo_ok && hi_ok {
                            next.push(lo);
                            next.push(hi);
                        } else {
                            next.push(piece);
                        }
                    }
                    pieces = next;
                }
                for shape in pieces {
                    // --- Tag blockers overlapping the tile interior.
                    let piece_bbox = shape.bbox();
                    let mut blockers: Vec<Blocker> = Vec::new();
                    for ((tag, oct), bb) in blockages.iter().zip(&blk_bbox) {
                        if !piece_bbox.intersects(*bb) {
                            continue;
                        }
                        let ix = shape.intersection(oct);
                        if !ix.is_empty() && ix.area() > 0 && !blockers.contains(tag) {
                            blockers.push(*tag);
                        }
                    }
                    let id = TileId(self.tiles.len() as u32);
                    self.tiles.push(Some(TileNode {
                        layer,
                        cell: (cx, cy),
                        shape,
                        blockers,
                    }));
                    new_ids.push(id);
                }
            }
            // Fresh spatial index over the new tiles, in `cell_tiles`
            // order, so adjacency builds probe it instead of the full list.
            let mut index = GridIndex::with_capacity_hint(cell, new_ids.len());
            for &id in &new_ids {
                let bbox = self.tiles[id.0 as usize]
                    .as_ref()
                    .expect("freshly built tile")
                    .shape
                    .bbox();
                index.insert(bbox, id);
            }
            self.tile_index[idx] = Arc::new(index);
            self.cell_tiles[idx] = new_ids;
        }
        self.refresh_via_sites(cx, cy);
    }

    /// Re-derives the candidate via sites of one cell: for each adjacent
    /// layer pair, up to three of the largest free tiles (meeting the via
    /// footprint) whose interior points are also free on the other layer.
    /// (The paper inserts one via per cell; extra candidates only matter in
    /// crowded cells where the largest tile's site has been consumed.)
    fn refresh_via_sites(&mut self, cx: usize, cy: usize) {
        let slot = cy * self.cfg.cells_x + cx;
        self.via_sites[slot].clear();
        let need = (self.cfg.via_width + 2 * self.cfg.clearance) as f64;
        for upper_idx in 0..self.layers.saturating_sub(1) {
            let upper = WireLayer(upper_idx as u8);
            let lower = WireLayer(upper_idx as u8 + 1);
            let mut cands: Vec<(i128, Point)> = Vec::new();
            for &id in self.tiles_in_cell(upper, cx, cy) {
                let t = self.tile(id);
                if !t.is_free() || t.shape.thickness() < need {
                    continue;
                }
                let p = t.shape.interior_point();
                // The same point must be free on the lower layer.
                let free_below = self
                    .tiles_in_cell(lower, cx, cy)
                    .iter()
                    .any(|&lid| {
                        let lt = self.tile(lid);
                        lt.is_free() && lt.shape.contains(p) && lt.shape.thickness() >= need
                    });
                if !free_below {
                    continue;
                }
                cands.push((t.shape.area(), p));
            }
            cands.sort_by_key(|c| std::cmp::Reverse(c.0));
            for (_, at) in cands.into_iter().take(3) {
                self.via_sites[slot].push(ViaSite { at, upper, lower });
            }
        }
    }

    /// Invalidates cached adjacency lists of every tile in cell `(cx, cy)`
    /// and its 4-adjacent cells, on every layer, by bumping the cells'
    /// adjacency epochs — entries stamped with the old epoch fail the
    /// validity check on their next lookup. Called by cell rebuilds: edges
    /// of ring tiles reference the tiles being replaced, and covered
    /// intervals reference the rebuilt cell's wires.
    fn invalidate_adjacency(&mut self, cx: usize, cy: usize) {
        let mut cells = vec![(cx, cy)];
        if cx > 0 {
            cells.push((cx - 1, cy));
        }
        if cy > 0 {
            cells.push((cx, cy - 1));
        }
        if cx + 1 < self.cfg.cells_x {
            cells.push((cx + 1, cy));
        }
        if cy + 1 < self.cfg.cells_y {
            cells.push((cx, cy + 1));
        }
        self.epoch_counter += 1;
        let epoch = self.epoch_counter;
        for layer in 0..self.layers {
            for &(ox, oy) in &cells {
                let idx = self.cell_index(layer, ox, oy);
                self.adj_epoch[idx] = epoch;
            }
        }
    }

    /// Legality-cache counters: `(hits, misses)` of the adjacency cache
    /// since this space was built (restored snapshots revert with the
    /// snapshot's counts, so trial work discarded by a rip-up restore is
    /// not double-reported).
    pub fn adjacency_cache_stats(&self) -> (u64, u64) {
        let s = self.adjacency.lock();
        (s.hits, s.misses)
    }

    /// Planar neighbors of a tile passable for `net`: tiles in the same or
    /// 4-adjacent global cells on the same layer sharing a positive-length
    /// boundary not covered by a wire.
    pub fn planar_neighbors(&self, id: TileId, net: NetId) -> Vec<PlanarEdge> {
        let mut out = Vec::new();
        self.planar_neighbors_into(id, net, &mut out);
        out
    }

    /// [`RoutingSpace::planar_neighbors`] into a caller-owned buffer
    /// (cleared first) — the A\* inner loop reuses one buffer across every
    /// expansion. Net-agnostic adjacency comes from the per-tile cache;
    /// only the per-net passability filter and wire subtraction run here.
    pub fn planar_neighbors_into(&self, id: TileId, net: NetId, out: &mut Vec<PlanarEdge>) {
        out.clear();
        if !self.cfg.adjacency_cache {
            // Ablation baseline: rebuild the geometry every time (counted
            // as a miss so the hit rate reads 0%).
            self.adjacency.lock().misses += 1;
            let raw = self.build_raw_edges(id);
            let min_t = self.cfg.min_thickness as f64;
            for e in &raw {
                if !self.tile(e.to).passable_for(net) {
                    continue;
                }
                if let Some(crossing) = open_from_covered(e.seg, &e.covered, net, min_t) {
                    out.push(PlanarEdge { to: e.to, crossing });
                }
            }
            return;
        }
        let epoch = {
            let t = self.tile(id);
            let (cx, cy) = t.cell;
            self.adj_epoch[self.cell_index(t.layer.index(), cx, cy)]
        };
        let cached = {
            let mut s = self.adjacency.lock();
            let hit = match s.map.get(&id.0) {
                Some((stamp, r)) if *stamp == epoch => Some(Arc::clone(r)),
                _ => None,
            };
            if hit.is_some() {
                s.hits += 1;
            } else {
                s.misses += 1;
            }
            hit
        };
        let raw = match cached {
            Some(r) => r,
            None => {
                let built = Arc::new(self.build_raw_edges(id));
                self.adjacency.lock().map.insert(id.0, (epoch, Arc::clone(&built)));
                built
            }
        };
        let min_t = self.cfg.min_thickness as f64;
        for e in raw.iter() {
            if !self.tile(e.to).passable_for(net) {
                continue;
            }
            if let Some(crossing) = open_from_covered(e.seg, &e.covered, net, min_t) {
                out.push(PlanarEdge { to: e.to, crossing });
            }
        }
    }

    /// Computes the net-agnostic adjacency list of one tile: every
    /// boundary-sharing neighbor (passable or not — passability is a
    /// per-net query-time filter) with the wire intervals along the shared
    /// boundary.
    fn build_raw_edges(&self, id: TileId) -> Vec<RawEdge> {
        let t = self.tile(id);
        let (cx, cy) = t.cell;
        let layer = t.layer;
        let mut out = Vec::new();
        let mut cells = vec![(cx, cy)];
        if cx > 0 {
            cells.push((cx - 1, cy));
        }
        if cy > 0 {
            cells.push((cx, cy - 1));
        }
        if cx + 1 < self.cfg.cells_x {
            cells.push((cx + 1, cy));
        }
        if cy + 1 < self.cfg.cells_y {
            cells.push((cx, cy + 1));
        }
        let my_bbox = t.shape.bbox();
        for &(ox, oy) in &cells {
            // Tiles sharing a boundary must have touching bounding boxes,
            // so the per-cell index narrows thousands of cell tiles down
            // to the handful near this one. Query results come back in
            // insertion (= `cell_tiles`) order — the same candidate order
            // the full scan used, so edge order (and thus A\* tie-breaks)
            // is unchanged.
            let index = &self.tile_index[self.cell_index(layer.index(), ox, oy)];
            for entry in index.query_ref(my_bbox) {
                let (_, &other) = index.get(entry).expect("live index entry");
                if other == id {
                    continue;
                }
                let o = self.tile(other);
                let shared = t.shape.intersection(&o.shape);
                let Some(seg) = shared.as_degenerate_segment() else {
                    continue;
                };
                if seg.len_euclid() < self.cfg.min_thickness as f64 {
                    continue;
                }
                let Some(covered) = self.covered_intervals(layer, (cx, cy), (ox, oy), seg)
                else {
                    continue;
                };
                out.push(RawEdge { to: other, seg, covered });
            }
        }
        out
    }

    /// Collects the parameter intervals `[lo, hi] ⊂ [0, 1]` of `seg`
    /// covered by wires running along it, every net included, stably
    /// sorted by `lo`. `None` when the segment has no supporting line
    /// (the edge is unusable for every net).
    fn covered_intervals(
        &self,
        layer: WireLayer,
        cell_a: (usize, usize),
        cell_b: (usize, usize),
        seg: Segment,
    ) -> Option<Vec<(NetId, f64, f64)>> {
        let line = seg.supporting_line()?;
        let dir = seg.delta();
        let len_sq = dir.norm_sq() as f64;
        let mut covered: Vec<(NetId, f64, f64)> = Vec::new();
        let mut cells = vec![cell_a];
        if cell_b != cell_a {
            cells.push(cell_b);
        }
        for (ox, oy) in cells {
            let idx = self.cell_index(layer.index(), ox, oy);
            for (wnet, w) in &self.cell_wires[idx] {
                let Some(wline) = w.supporting_line() else { continue };
                if wline != line {
                    continue;
                }
                let ta = (w.a - seg.a).dot(dir) as f64 / len_sq;
                let tb = (w.b - seg.a).dot(dir) as f64 / len_sq;
                let (lo, hi) = if ta <= tb { (ta, tb) } else { (tb, ta) };
                let lo = lo.max(0.0);
                let hi = hi.min(1.0);
                if lo < hi {
                    covered.push((*wnet, lo, hi));
                }
            }
        }
        // Stable sort: a per-net filter of this list followed by the
        // longest-gap scan reproduces the historical filter-then-sort
        // result byte for byte.
        covered.sort_by(|a, b| a.1.total_cmp(&b.1));
        Some(covered)
    }

    /// Via-site edges usable from a tile: sites in the tile's cell whose
    /// point lies inside the tile, each linking to the tile at the same
    /// point on the adjacent layer.
    pub fn via_neighbors(&self, id: TileId, net: NetId) -> Vec<(TileId, Point)> {
        let mut out = Vec::new();
        self.via_neighbors_into(id, net, &mut out);
        out
    }

    /// [`RoutingSpace::via_neighbors`] into a caller-owned buffer
    /// (cleared first).
    pub fn via_neighbors_into(&self, id: TileId, net: NetId, out: &mut Vec<(TileId, Point)>) {
        out.clear();
        let t = self.tile(id);
        let (cx, cy) = t.cell;
        for site in self.via_sites(cx, cy) {
            let other_layer = if site.upper == t.layer {
                site.lower
            } else if site.lower == t.layer {
                site.upper
            } else {
                continue;
            };
            if !t.shape.contains(site.at) {
                continue;
            }
            if let Some(dst) = self.tile_at(other_layer, site.at, net) {
                out.push((dst, site.at));
            }
        }
    }
}

/// The longest sub-interval of `seg` not covered by a foreign wire
/// (intervals of `net` itself are skipped), if long enough to pass.
/// `covered` must be sorted by `lo` — see
/// [`RoutingSpace::covered_intervals`].
fn open_from_covered(
    seg: Segment,
    covered: &[(NetId, f64, f64)],
    net: NetId,
    min_thickness: f64,
) -> Option<Segment> {
    let dir = seg.delta();
    let len_sq = dir.norm_sq() as f64;
    let mut best: Option<(f64, f64)> = None;
    let mut cursor = 0.0f64;
    let mut any = false;
    for &(wnet, lo, hi) in covered {
        if wnet == net {
            continue;
        }
        any = true;
        if lo > cursor {
            let gap = (cursor, lo);
            if best.is_none_or(|(a, b)| gap.1 - gap.0 > b - a) {
                best = Some(gap);
            }
        }
        cursor = cursor.max(hi);
    }
    if !any {
        return Some(seg);
    }
    // Trailing sentinel interval (1.0, 1.0): closes the final gap.
    if 1.0 > cursor {
        let gap = (cursor, 1.0);
        if best.is_none_or(|(a, b)| gap.1 - gap.0 > b - a) {
            best = Some(gap);
        }
    }
    let (lo, hi) = best?;
    let min_t = min_thickness / len_sq.sqrt();
    if hi - lo < min_t {
        return None;
    }
    let at = |t: f64| {
        Point::new(
            seg.a.x + (dir.dx as f64 * t).round() as Coord,
            seg.a.y + (dir.dy as f64 * t).round() as Coord,
        )
    };
    Some(Segment::new(at(lo), at(hi)))
}

/// Two-pass strip merging of disjoint rectangles: first horizontally
/// within equal y-spans, then vertically within equal x-spans.
fn strip_merge(mut rects: Vec<Rect>) -> Vec<Rect> {
    let merge_axis = |mut rects: Vec<Rect>, horizontal: bool| -> Vec<Rect> {
        rects.sort_by_key(|r| {
            if horizontal {
                (r.lo.y, r.hi.y, r.lo.x)
            } else {
                (r.lo.x, r.hi.x, r.lo.y)
            }
        });
        let mut out: Vec<Rect> = Vec::with_capacity(rects.len());
        for r in rects {
            if let Some(last) = out.last_mut() {
                let fits = if horizontal {
                    last.lo.y == r.lo.y && last.hi.y == r.hi.y && last.hi.x == r.lo.x
                } else {
                    last.lo.x == r.lo.x && last.hi.x == r.hi.x && last.hi.y == r.lo.y
                };
                if fits {
                    *last = last.union(r);
                    continue;
                }
            }
            out.push(r);
        }
        out
    };
    rects = merge_axis(rects, true);
    merge_axis(rects, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use info_model::{DesignRules, PackageBuilder};

    fn small_package() -> Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(400_000, 400_000)),
            DesignRules::default(),
            2,
        );
        let c = b.add_chip(Rect::new(Point::new(40_000, 40_000), Point::new(160_000, 160_000)));
        let p = b.add_io_pad(c, Point::new(100_000, 100_000)).unwrap();
        let g = b.add_bump_pad(Point::new(300_000, 300_000)).unwrap();
        b.add_net(p, g).unwrap();
        b.build().unwrap()
    }

    fn cfg() -> SpaceConfig {
        SpaceConfig {
            cells_x: 4,
            cells_y: 4,
            clearance: 4_000,
            min_thickness: 4_000,
            via_width: 5_000,
            via_cost: 20_000.0,
            adjacency_cache: true,
        }
    }

    #[test]
    fn build_produces_tiles_everywhere() {
        let pkg = small_package();
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        // Every cell on every layer has at least one tile.
        for layer in [WireLayer(0), WireLayer(1)] {
            for cy in 0..4 {
                for cx in 0..4 {
                    assert!(
                        !space.tiles_in_cell(layer, cx, cy).is_empty(),
                        "no tiles in cell ({cx},{cy}) layer {layer}"
                    );
                }
            }
        }
    }

    #[test]
    fn pad_tiles_are_net_tagged() {
        let pkg = small_package();
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        let net = NetId(0);
        let pad_center = Point::new(100_000, 100_000);
        // Own net can stand on its pad.
        assert!(space.tile_at(WireLayer(0), pad_center, net).is_some());
        // A foreign net cannot.
        assert!(space.tile_at(WireLayer(0), pad_center, NetId(99)).is_none());
        // Far away, anyone can.
        assert!(space.tile_at(WireLayer(0), Point::new(350_000, 50_000), NetId(99)).is_some());
    }

    #[test]
    fn via_sites_exist_in_open_cells() {
        let pkg = small_package();
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        let total: usize = (0..4)
            .flat_map(|cy| (0..4).map(move |cx| (cx, cy)))
            .map(|(cx, cy)| space.via_sites(cx, cy).len())
            .sum();
        assert!(total >= 12, "expected via sites in most cells, got {total}");
    }

    #[test]
    fn planar_neighbors_cross_cell_borders() {
        let pkg = small_package();
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        let net = NetId(0);
        let start = space.tile_at(WireLayer(0), Point::new(350_000, 50_000), net).unwrap();
        let edges = space.planar_neighbors(start, net);
        assert!(!edges.is_empty());
        // All crossings are real shared boundaries.
        for e in &edges {
            assert!(e.crossing.len_euclid() > 0.0);
        }
    }

    #[test]
    fn wires_split_tiles_and_block_bands() {
        let pkg = small_package();
        let mut layout = Layout::new(&pkg);
        // A horizontal foreign wire across the middle of a cell.
        layout.add_route(
            NetId(0),
            WireLayer(0),
            info_geom::Polyline::new(vec![Point::new(210_000, 250_000), Point::new(390_000, 250_000)]),
        );
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        // A foreign net standing just above the wire is inside the blocked
        // band (clearance 4 µm): no free tile hosts a point 2 µm away.
        let near = Point::new(300_000, 252_000);
        let t = space.tile_at(WireLayer(0), near, NetId(5));
        assert!(t.is_none(), "point 2 µm from a foreign wire must be blocked");
        // 6 µm away is fine.
        let far = Point::new(300_000, 258_000);
        assert!(space.tile_at(WireLayer(0), far, NetId(5)).is_some());
        // The wire's own net may pass.
        assert!(space.tile_at(WireLayer(0), near, NetId(0)).is_some());
    }

    #[test]
    fn diagonal_wire_produces_octagonal_tiles() {
        let pkg = small_package();
        let mut layout = Layout::new(&pkg);
        layout.add_route(
            NetId(0),
            WireLayer(1),
            info_geom::Polyline::new(vec![Point::new(210_000, 210_000), Point::new(290_000, 290_000)]),
        );
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        // Some tile on layer 1 now has a diagonal boundary (5+ edges or a
        // triangle with a 45° side).
        let has_diag = space.live_tiles().any(|(_, t)| {
            t.layer == WireLayer(1)
                && t.shape
                    .edges()
                    .iter()
                    .any(|(d, s)| d.is_diagonal() && s.len_euclid() > 1_000.0)
        });
        assert!(has_diag, "expected diagonal tile boundaries");
    }

    #[test]
    fn rebuild_dirty_refreshes_only_touched_cells() {
        let pkg = small_package();
        let mut layout = Layout::new(&pkg);
        let space_before = RoutingSpace::build(&pkg, &layout, cfg());
        let far_tile = space_before
            .tile_at(WireLayer(0), Point::new(50_000, 350_000), NetId(9))
            .unwrap();

        layout.add_route(
            NetId(0),
            WireLayer(0),
            info_geom::Polyline::new(vec![Point::new(310_000, 60_000), Point::new(390_000, 60_000)]),
        );
        let mut space = space_before.clone();
        space.rebuild_dirty(
            &pkg,
            &layout,
            Rect::new(Point::new(310_000, 60_000), Point::new(390_000, 60_000)),
        );
        // The far-away tile id survives (cell untouched).
        assert!(space.tiles[far_tile.0 as usize].is_some());
        // Near the new wire, a foreign net is now blocked.
        assert!(space.tile_at(WireLayer(0), Point::new(350_000, 61_000), NetId(5)).is_none());
    }
}
