//! Minimum-cost maximum-flow, the classic substrate of free-assignment
//! RDL routing (Fang et al. \[4\], Lin et al. \[11\]).
//!
//! Successive shortest augmenting paths with Johnson potentials (Bellman–
//! Ford once for negative edges, then Dijkstra per augmentation). Suitable
//! for the assignment-sized graphs FA routing produces (thousands of
//! nodes).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A directed edge of the flow network.
#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A min-cost max-flow network on `n` nodes.
///
/// ```
/// use info_tile::mcmf::McmfGraph;
/// // Two unit paths s→t: the cheap one is used first.
/// let mut g = McmfGraph::new(4);
/// g.add_edge(0, 1, 1, 1);
/// g.add_edge(0, 2, 1, 5);
/// g.add_edge(1, 3, 1, 0);
/// g.add_edge(2, 3, 1, 0);
/// let r = g.min_cost_flow(0, 3, i64::MAX);
/// assert_eq!((r.flow, r.cost), (2, 6));
/// ```
#[derive(Debug, Clone)]
pub struct McmfGraph {
    graph: Vec<Vec<Edge>>,
}

/// Result of a flow computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    /// Total flow pushed.
    pub flow: i64,
    /// Total cost of that flow.
    pub cost: i64,
}

impl McmfGraph {
    /// Creates an empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        McmfGraph { graph: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from → to` with the given capacity and cost;
    /// returns an identifier usable with [`McmfGraph::flow_on`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the capacity is negative.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> (usize, usize) {
        assert!(from < self.graph.len() && to < self.graph.len(), "edge endpoint out of range");
        assert!(cap >= 0, "negative capacity");
        let fwd = self.graph[from].len();
        let rev = self.graph[to].len() + usize::from(from == to);
        self.graph[from].push(Edge { to, cap, cost, rev });
        self.graph[to].push(Edge { to: from, cap: 0, cost: -cost, rev: fwd });
        (from, fwd)
    }

    /// Flow currently on the edge returned by [`McmfGraph::add_edge`].
    pub fn flow_on(&self, id: (usize, usize)) -> i64 {
        let e = &self.graph[id.0][id.1];
        // Flow = residual capacity of the reverse edge.
        self.graph[e.to][e.rev].cap
    }

    /// Computes a minimum-cost flow of at most `limit` units from `s` to
    /// `t` (pass `i64::MAX` for max-flow).
    pub fn min_cost_flow(&mut self, s: usize, t: usize, limit: i64) -> FlowResult {
        let n = self.graph.len();
        let mut flow = 0i64;
        let mut cost = 0i64;
        // Johnson potentials; initialize with Bellman-Ford in case of
        // negative edge costs.
        let mut pot = vec![0i64; n];
        for _ in 0..n {
            let mut changed = false;
            for u in 0..n {
                for e in &self.graph[u] {
                    if e.cap > 0 && pot[u] + e.cost < pot[e.to] {
                        pot[e.to] = pot[u] + e.cost;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        while flow < limit {
            // Dijkstra with potentials.
            const INF: i64 = i64::MAX / 4;
            let mut dist = vec![INF; n];
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
            let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
            dist[s] = 0;
            heap.push(Reverse((0, s)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for (ei, e) in self.graph[u].iter().enumerate() {
                    if e.cap <= 0 {
                        continue;
                    }
                    let nd = d + e.cost + pot[u] - pot[e.to];
                    if nd < dist[e.to] {
                        dist[e.to] = nd;
                        prev[e.to] = Some((u, ei));
                        heap.push(Reverse((nd, e.to)));
                    }
                }
            }
            if dist[t] >= INF {
                break; // no augmenting path
            }
            for v in 0..n {
                if dist[v] < INF {
                    pot[v] += dist[v];
                }
            }
            // Bottleneck along the path.
            let mut push = limit - flow;
            let mut v = t;
            while let Some((u, ei)) = prev[v] {
                push = push.min(self.graph[u][ei].cap);
                v = u;
            }
            // Apply.
            let mut v = t;
            while let Some((u, ei)) = prev[v] {
                let rev = self.graph[u][ei].rev;
                self.graph[u][ei].cap -= push;
                cost += self.graph[u][ei].cost * push;
                self.graph[v][rev].cap += push;
                v = u;
            }
            flow += push;
        }
        FlowResult { flow, cost }
    }
}

/// Solves a rectangular assignment problem: `cost[i][j]` is the cost of
/// assigning source `i` to sink `j` (`None` = forbidden). Returns the
/// per-source sink choice maximizing the number of assignments and, among
/// those, minimizing total cost.
pub fn assign_min_cost(costs: &[Vec<Option<i64>>]) -> Vec<Option<usize>> {
    let n_src = costs.len();
    let n_snk = costs.first().map_or(0, Vec::len);
    if n_src == 0 || n_snk == 0 {
        return vec![None; n_src];
    }
    let s = n_src + n_snk;
    let t = s + 1;
    let mut g = McmfGraph::new(n_snk + n_src + 2);
    let mut edge_ids = vec![Vec::new(); n_src];
    for (i, row) in costs.iter().enumerate() {
        g.add_edge(s, i, 1, 0);
        for (j, c) in row.iter().enumerate() {
            if let Some(c) = c {
                let id = g.add_edge(i, n_src + j, 1, *c);
                edge_ids[i].push((j, id));
            }
        }
    }
    for j in 0..n_snk {
        g.add_edge(n_src + j, t, 1, 0);
    }
    g.min_cost_flow(s, t, i64::MAX);
    edge_ids
        .iter()
        .map(|row| row.iter().find(|(_, id)| g.flow_on(*id) > 0).map(|(j, _)| *j))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_max_flow() {
        // s -> a -> t and s -> b -> t, unit capacities.
        let mut g = McmfGraph::new(4);
        g.add_edge(0, 1, 1, 1);
        g.add_edge(0, 2, 1, 2);
        g.add_edge(1, 3, 1, 0);
        g.add_edge(2, 3, 1, 0);
        let r = g.min_cost_flow(0, 3, i64::MAX);
        assert_eq!(r, FlowResult { flow: 2, cost: 3 });
    }

    #[test]
    fn respects_flow_limit() {
        let mut g = McmfGraph::new(4);
        g.add_edge(0, 1, 5, 1);
        g.add_edge(0, 2, 5, 3);
        g.add_edge(1, 3, 5, 0);
        g.add_edge(2, 3, 5, 0);
        // Only 3 units wanted: all through the cheap path.
        let r = g.min_cost_flow(0, 3, 3);
        assert_eq!(r, FlowResult { flow: 3, cost: 3 });
    }

    #[test]
    fn prefers_cheap_paths() {
        // Two parallel paths; cheap one saturates first.
        let mut g = McmfGraph::new(3);
        let cheap = g.add_edge(0, 1, 2, 1);
        let dear = g.add_edge(0, 1, 2, 10);
        g.add_edge(1, 2, 3, 0);
        let r = g.min_cost_flow(0, 2, 3);
        assert_eq!(r.flow, 3);
        assert_eq!(r.cost, 2 + 10); // 2 units at cost 1 + 1 unit at cost 10
        assert_eq!(g.flow_on(cheap), 2);
        assert_eq!(g.flow_on(dear), 1);
    }

    #[test]
    fn handles_negative_costs() {
        let mut g = McmfGraph::new(3);
        g.add_edge(0, 1, 1, -5);
        g.add_edge(1, 2, 1, 2);
        let r = g.min_cost_flow(0, 2, i64::MAX);
        assert_eq!(r, FlowResult { flow: 1, cost: -3 });
    }

    #[test]
    fn disconnected_sink() {
        let mut g = McmfGraph::new(3);
        g.add_edge(0, 1, 1, 1);
        let r = g.min_cost_flow(0, 2, i64::MAX);
        assert_eq!(r.flow, 0);
    }

    #[test]
    fn assignment_basic() {
        // Two sources, two sinks; diagonal is cheap.
        let costs = vec![
            vec![Some(1), Some(10)],
            vec![Some(10), Some(1)],
        ];
        assert_eq!(assign_min_cost(&costs), vec![Some(0), Some(1)]);
    }

    #[test]
    fn assignment_with_forbidden_pairs() {
        // Source 0 can only use sink 1.
        let costs = vec![
            vec![None, Some(5)],
            vec![Some(1), Some(1)],
        ];
        let asg = assign_min_cost(&costs);
        assert_eq!(asg[0], Some(1));
        assert_eq!(asg[1], Some(0));
    }

    #[test]
    fn assignment_more_sources_than_sinks() {
        let costs = vec![
            vec![Some(1)],
            vec![Some(2)],
            vec![Some(3)],
        ];
        let asg = assign_min_cost(&costs);
        // Exactly one source gets the sink — the cheapest.
        assert_eq!(asg.iter().flatten().count(), 1);
        assert_eq!(asg[0], Some(0));
    }

    #[test]
    fn assignment_maximizes_cardinality_over_cost() {
        // Greedy-by-cost would give src0 → snk0 (cost 1) and strand src1;
        // max-cardinality assigns both.
        let costs = vec![
            vec![Some(1), Some(100)],
            vec![Some(2), None],
        ];
        let asg = assign_min_cost(&costs);
        assert_eq!(asg, vec![Some(1), Some(0)]);
    }

    #[test]
    fn empty_inputs() {
        assert!(assign_min_cost(&[]).is_empty());
        assert_eq!(assign_min_cost(&[vec![], vec![]]), vec![None, None]);
    }
}
