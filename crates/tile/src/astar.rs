//! A\*-search over the multi-layer tile graph (§III-D).
//!
//! ## Search architecture (see DESIGN.md §4d)
//!
//! The hot path avoids per-net allocation entirely:
//!
//! - **Open list** — a [`BucketQueue`] (exact-min calendar queue) instead
//!   of a binary heap; pop order, including `(f_bits, tile_id)`
//!   tie-breaks, is identical to the historical
//!   `BinaryHeap<Reverse<(u64, u32)>>`.
//! - **Node state** — generation-stamped flat arrays ([`SearchScratch`],
//!   one per thread, reused across every net) instead of a per-net
//!   `HashMap`.
//! - **Heuristic cache** — `h(tile) = x_arch_len(entry, dst) +
//!   layer_hops · via_cost` is memoized per tile, keyed by the target
//!   `(space revision, dst layer, dst point, via cost)`; rip-up retries of
//!   the same net against the same space state reuse cached values.
//! - **Windowed search** — each net first searches inside an inflated
//!   bounding box of its pad pair. Edges leaving the window are pruned but
//!   their would-be key `f = g + h` feeds a running lower bound
//!   `pruned_min_f`. The windowed result is accepted only when it is
//!   *provably* identical to a full-graph search (see below); otherwise
//!   the search escalates to the full graph, so windowing is lossless by
//!   construction.
//!
//! **Window fence argument.** The heuristic is consistent, so pops come
//! off the queue in non-decreasing `f`. The windowed and full searches
//! perform identical pops as long as every full-search-only queue entry —
//! exactly the pruned edges, whose keys are ≥ `pruned_min_f` — stays
//! strictly above the keys being popped. Hence if the destination pops at
//! `f_pop < pruned_min_f`, every pop (all ≤ `f_pop`) was identical in
//! both searches and the full search would return the same path, cost,
//! and parent chain bit for bit. Symmetrically, if the window exhausts
//! without pruning anything (`pruned_min_f = ∞`), the windowed search
//! *was* the full search and its failure is authoritative.

use crate::bucket::BucketQueue;
use crate::cancel::{CancelToken, CHECK_INTERVAL};
use crate::landmarks::Landmarks;
use crate::space::{PlanarEdge, RoutingSpace, TileId};
use info_geom::{x_arch_len, Point, Rect};
use info_model::{NetId, WireLayer};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One step of a tile path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    /// The tile being traversed.
    pub tile: TileId,
    /// The point at which the path enters the tile (the source point for
    /// the first step; the crossing midpoint or via site afterwards).
    pub entry: Point,
    /// When this step changed layers, the via use `(site, upper, lower)`.
    pub via: Option<(Point, WireLayer, WireLayer)>,
}

/// Result of a successful search.
#[derive(Debug, Clone)]
pub struct AstarResult {
    /// The steps from source tile to destination tile, inclusive.
    pub steps: Vec<PathStep>,
    /// Total path cost (wirelength estimate plus via penalties), in nm.
    pub cost: f64,
    /// Queue key (`g + h`) of the accepting destination pop.
    pub f_accept: f64,
    /// Accumulated path cost at the accepting destination pop. Can differ
    /// from `cost` in the last bits (see the reconstruction comment in
    /// `run`).
    pub g_accept: f64,
}

/// Why a search found no path (the telemetry taxonomy's search half).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchFailure {
    /// A terminal had no usable tile (blocked pad), or the search was
    /// asked to cross layers with vias disallowed.
    BlockedTerminal,
    /// The open list went dry: provably no path in the searched graph.
    /// Combined with [`SearchStats::window_escalations`], callers can
    /// tell a windowed-authoritative failure from an escalated one.
    Exhausted,
    /// The expansion budget tripped; `last_tile` is where the search was
    /// grinding when it gave up.
    BudgetCapped {
        /// The last tile popped before the budget tripped.
        last_tile: TileId,
    },
    /// A cross-layer search that never enumerated a single via adjacency:
    /// the terminal's region offers no via capacity at all. `cell` is the
    /// source tile's global cell.
    NoViaPath {
        /// Global cell `(cx, cy)` of the stranded source.
        cell: (usize, usize),
    },
    /// The search's [`CancelToken`] tripped (explicit cancel, deadline,
    /// or deterministic check trip); the search stopped within
    /// [`CHECK_INTERVAL`] expansions of the trip. Not a statement about
    /// the net's routability.
    Cancelled,
}

/// Aggregate statistics of one or more searches. Totals can vary with the
/// thread count (speculative plans that are discarded still searched);
/// authoritative per-net numbers come from the sequential commit path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Public search entry points taken.
    pub searches: u64,
    /// Nodes expanded (neighbor enumerations), across all searches.
    pub nodes_expanded: u64,
    /// Windowed searches that escalated to the full graph.
    pub window_escalations: u64,
    /// Nodes expanded by escalated continuations specifically (a subset
    /// of `nodes_expanded`). An escalation no longer restarts from
    /// scratch — it resumes from the windowed run's surviving open list —
    /// so this measures exactly the extra work escalations cost.
    pub escalation_expansions: u64,
    /// Largest open-list population observed.
    pub heap_peak: u64,
    /// Heuristic evaluations where the ALT landmark lower bound beat the
    /// geometric bound (zero when landmarks are not installed).
    pub heuristic_tightenings: u64,
}

impl SearchStats {
    /// Folds another stats block into this one (sums, max of peaks).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.searches += other.searches;
        self.nodes_expanded += other.nodes_expanded;
        self.window_escalations += other.window_escalations;
        self.escalation_expansions += other.escalation_expansions;
        self.heap_peak = self.heap_peak.max(other.heap_peak);
        self.heuristic_tightenings += other.heuristic_tightenings;
    }
}

/// Search behavior knobs.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Try the pad-pair window first, escalating only when the result is
    /// not provably identical to a full-graph search. Lossless; `false`
    /// forces the full graph directly (the differential-test baseline).
    pub windowed: bool,
    /// Allow layer changes through candidate via sites.
    pub allow_vias: bool,
    /// Collect the traced read-cell set in the generation-stamped scratch
    /// arena instead of a per-search `BTreeSet` (identical output either
    /// way; `false` is the ablation/differential baseline).
    pub arena: bool,
    /// Per-run expansion budget override; `None` uses [`MAX_EXPANSIONS`].
    /// A windowed search and its escalation each get one budget, so a
    /// doomed search costs at most twice this. Tests shrink it to make
    /// searches fail cheaply on demand; shrinking it in production trades
    /// completeness for time (nets whose paths need more expansions
    /// report `BudgetCapped` instead of routing).
    pub expansion_budget: Option<usize>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions { windowed: true, allow_vias: true, arena: true, expansion_budget: None }
    }
}

/// Routes `net` from `(src_layer, src)` to `(dst_layer, dst)` over the
/// tile space, returning the tile path, or `None` when the terminals are
/// unreachable (blocked terminals, disconnected free space, or exhausted
/// expansion budget).
pub fn route(
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
) -> Option<AstarResult> {
    route_with(space, net, src, dst, true)
}

/// [`route`] with flexible-via use controllable: with `allow_vias = false`
/// the search stays on the source layer (the no-flexible-via regime of the
/// prior-work baseline), so `src` and `dst` must share a layer.
pub fn route_with(
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
    allow_vias: bool,
) -> Option<AstarResult> {
    let mut stats = SearchStats::default();
    let opts = SearchOptions { allow_vias, ..SearchOptions::default() };
    search(space, net, src, dst, opts, None, false, &mut stats).0.ok()
}

/// [`route`] that additionally reports the global cells the search read:
/// the terminals' cells plus the cell of every tile reached by the search
/// frontier. Neighbor enumeration only examines the 4-adjacent cells of a
/// reached tile, so the returned set expanded by one cell ring covers
/// everything whose tiles, wires, or via sites could influence the result
/// — the read set the speculative parallel router checks against commits.
/// (Edges pruned by the search window are covered by the same ring: their
/// source tile's cell is always traced, and `pruned_min_f` depends on
/// nothing else outside the window.)
pub fn route_traced(
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
) -> (Option<AstarResult>, Vec<(usize, usize)>) {
    let mut stats = SearchStats::default();
    route_traced_opts(space, net, src, dst, SearchOptions::default(), &mut stats)
}

/// [`route_traced`] with explicit [`SearchOptions`], accumulating search
/// statistics into `stats`.
pub fn route_traced_opts(
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
    opts: SearchOptions,
    stats: &mut SearchStats,
) -> (Option<AstarResult>, Vec<(usize, usize)>) {
    let (result, cells) = route_traced_fallible(space, net, src, dst, opts, stats);
    (result.ok(), cells)
}

/// [`route_traced_opts`] that reports *why* a failed search failed (the
/// telemetry journal's search-level failure taxonomy).
pub fn route_traced_fallible(
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
    opts: SearchOptions,
    stats: &mut SearchStats,
) -> (Result<AstarResult, SearchFailure>, Vec<(usize, usize)>) {
    search(space, net, src, dst, opts, None, true, stats)
}

/// [`route_traced_fallible`] observing a [`CancelToken`]: the expansion
/// loop checkpoints the token every [`CHECK_INTERVAL`] expansions and
/// aborts with [`SearchFailure::Cancelled`] when it trips, so a deadline
/// or an explicit cancel lands mid-search in bounded time instead of at
/// the next per-net boundary. With `cancel = None` (or a quiet token)
/// the search is bit-identical to the uncancellable entry points.
pub fn route_traced_cancellable(
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
    opts: SearchOptions,
    cancel: Option<&CancelToken>,
    stats: &mut SearchStats,
) -> (Result<AstarResult, SearchFailure>, Vec<(usize, usize)>) {
    search(space, net, src, dst, opts, cancel, true, stats)
}

/// Sentinel for "no parent" in the scratch parent array.
const NO_PARENT: u32 = u32::MAX;

/// Expansion budget: keeps pathological searches bounded. Legitimate
/// paths expand a few thousand tiles; a flat cap keeps *failing* searches
/// (which otherwise sweep the whole reachable space) cheap on large
/// circuits.
pub const MAX_EXPANSIONS: usize = 60_000;

/// Per-thread reusable search state. All node arrays are indexed by tile
/// id and validated by generation stamps, so consecutive searches share
/// allocations without clearing; the heuristic cache has its own
/// generation that survives across searches aimed at the same target over
/// the same space revision.
struct SearchScratch {
    /// Node-state generation; `stamp[i] == gen` means slot `i` is live.
    gen: u32,
    stamp: Vec<u32>,
    g: Vec<f64>,
    entry: Vec<Point>,
    parent: Vec<u32>,
    via: Vec<Option<(Point, WireLayer, WireLayer)>>,
    /// Heuristic-cache generation and key (space revision + target).
    h_gen: u32,
    h_key: Option<(u64, WireLayer, Point, u64)>,
    h_stamp: Vec<u32>,
    h_entry: Vec<Point>,
    h_val: Vec<f64>,
    /// Window mask over global cells, stamped like the node arrays.
    win_gen: u32,
    win_stamp: Vec<u32>,
    queue: BucketQueue,
    nbr: Vec<PlanarEdge>,
    vnbr: Vec<(TileId, Point)>,
    /// Edges the windowed run pruned, kept so an escalation can re-inject
    /// them instead of restarting the search from scratch.
    pruned: Vec<PrunedEdge>,
    /// ALT landmark tables of the current space plus the target's
    /// stage-start node, resolved once per search (`None` = geometric
    /// heuristic only).
    alt: Option<(Arc<Landmarks>, u32)>,
    /// Cumulative count of heuristic evaluations the ALT bound tightened
    /// (searches record their delta into [`SearchStats`]).
    tightenings: u64,
    /// Stamped arena for the traced read-cell set (see [`TraceArena`]).
    trace: TraceArena,
}

/// Generation-stamped read-cell collector: the allocation-free
/// replacement for the per-search `BTreeSet` trace. `insert` is O(1)
/// (stamp check + push), and the sorted, deduplicated output matches the
/// tree's exactly.
#[derive(Default)]
struct TraceArena {
    gen: u32,
    stamp: Vec<u32>,
    cells_x: usize,
    touched: Vec<(usize, usize)>,
}

impl TraceArena {
    /// Starts a fresh trace over a `cells_x × cells_y` cell grid.
    fn begin(&mut self, cells_x: usize, cells_y: usize) {
        let n = cells_x * cells_y;
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.cells_x = cells_x;
        if self.gen == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.gen = 1;
        } else {
            self.gen += 1;
        }
        self.touched.clear();
    }

    #[inline]
    fn insert(&mut self, cell: (usize, usize)) {
        let i = cell.1 * self.cells_x + cell.0;
        if self.stamp[i] != self.gen {
            self.stamp[i] = self.gen;
            self.touched.push(cell);
        }
    }

    /// The touched cells, sorted ascending (the arena keeps its storage).
    fn take_sorted(&mut self) -> Vec<(usize, usize)> {
        self.touched.sort_unstable();
        self.touched.clone()
    }
}

/// Where a search records the global cells it reads: the scratch arena on
/// the hot path, a plain tree on the ablation baseline.
enum TraceSink<'a> {
    Tree(&'a mut BTreeSet<(usize, usize)>),
    Arena(&'a mut TraceArena),
}

impl TraceSink<'_> {
    #[inline]
    fn insert(&mut self, cell: (usize, usize)) {
        match self {
            TraceSink::Tree(t) => {
                t.insert(cell);
            }
            TraceSink::Arena(a) => a.insert(cell),
        }
    }
}

/// One edge the windowed run refused to relax because its target cell was
/// outside the window. Everything needed to re-inject it — the would-be
/// node state plus the queue key computed at prune time — is recorded.
#[derive(Clone, Copy)]
struct PrunedEdge {
    to: u32,
    f_bits: u64,
    g: f64,
    entry: Point,
    parent: u32,
    via: Option<(Point, WireLayer, WireLayer)>,
}

impl SearchScratch {
    fn new() -> Self {
        SearchScratch {
            gen: 0,
            stamp: Vec::new(),
            g: Vec::new(),
            entry: Vec::new(),
            parent: Vec::new(),
            via: Vec::new(),
            h_gen: 0,
            h_key: None,
            h_stamp: Vec::new(),
            h_entry: Vec::new(),
            h_val: Vec::new(),
            win_gen: 0,
            win_stamp: Vec::new(),
            queue: BucketQueue::new(1.0),
            nbr: Vec::new(),
            vnbr: Vec::new(),
            pruned: Vec::new(),
            alt: None,
            tightenings: 0,
            trace: TraceArena::default(),
        }
    }

    /// Grows every array to the space's current tile/cell counts.
    fn ensure(&mut self, space: &RoutingSpace) {
        let slots = space.tile_slots();
        if self.stamp.len() < slots {
            let origin = Point::new(0, 0);
            self.stamp.resize(slots, 0);
            self.g.resize(slots, 0.0);
            self.entry.resize(slots, origin);
            self.parent.resize(slots, NO_PARENT);
            self.via.resize(slots, None);
            self.h_stamp.resize(slots, 0);
            self.h_entry.resize(slots, origin);
            self.h_val.resize(slots, 0.0);
        }
        let cfg = space.config();
        let ncells = cfg.cells_x * cfg.cells_y;
        if self.win_stamp.len() < ncells {
            self.win_stamp.resize(ncells, 0);
        }
    }

    /// Starts a fresh node generation (stamp-invalidates every slot).
    fn next_gen(&mut self) {
        if self.gen == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.gen = 1;
        } else {
            self.gen += 1;
        }
    }

    /// Keeps the heuristic cache when the target (and space state) is
    /// unchanged since the previous search; otherwise starts a fresh
    /// heuristic generation.
    fn retune_h(&mut self, key: (u64, WireLayer, Point, u64)) {
        if self.h_key == Some(key) {
            return;
        }
        self.h_key = Some(key);
        if self.h_gen == u32::MAX {
            self.h_stamp.iter_mut().for_each(|s| *s = 0);
            self.h_gen = 1;
        } else {
            self.h_gen += 1;
        }
    }

    /// The consistent heuristic, memoized per tile: straight-line
    /// X-architecture length to the target plus the via penalty of the
    /// remaining layer hops, tightened by the ALT landmark lower bound
    /// when tables are installed (the max of two consistent heuristics is
    /// consistent). A cached value is valid only for the same entry point
    /// (re-entries at a new point recompute and re-cache).
    #[inline]
    fn h(&mut self, tile: u32, p: Point, layer: WireLayer, dst: &(WireLayer, Point), via_cost: f64) -> f64 {
        let i = tile as usize;
        if self.h_stamp[i] == self.h_gen && self.h_entry[i] == p {
            return self.h_val[i];
        }
        let hops = layer.index().abs_diff(dst.0.index()) as f64;
        let mut v = x_arch_len(p, dst.1) + hops * via_cost;
        if let Some((lm, dst_node)) = &self.alt {
            if let Some(node) = lm.node_at(layer.index(), p) {
                let alt = lm.lower_bound(node, *dst_node);
                if alt > v {
                    v = alt;
                    self.tightenings += 1;
                }
            }
        }
        self.h_stamp[i] = self.h_gen;
        self.h_entry[i] = p;
        self.h_val[i] = v;
        v
    }

    /// Stamps the window mask: every global cell intersecting the
    /// pad-pair bounding box inflated by a margin proportional to the net
    /// span (plus a clearance-scaled floor for short nets).
    fn set_window(&mut self, space: &RoutingSpace, a: Point, b: Point) {
        if self.win_gen == u32::MAX {
            self.win_stamp.iter_mut().for_each(|s| *s = 0);
            self.win_gen = 1;
        } else {
            self.win_gen += 1;
        }
        let cfg = space.config();
        let bbox = Rect::new(a, b);
        let margin =
            (bbox.width() + bbox.height()) / 6 + 10 * (cfg.clearance + cfg.via_width);
        for (cx, cy) in space.cells_touching(bbox.inflate(margin)) {
            self.win_stamp[cy * cfg.cells_x + cx] = self.win_gen;
        }
    }

    #[inline]
    fn in_window(&self, cells_x: usize, cell: (usize, usize)) -> bool {
        self.win_stamp[cell.1 * cells_x + cell.0] == self.win_gen
    }
}

thread_local! {
    static SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::new());
}

/// How one bounded A\* run over the (possibly windowed) graph ended.
enum RunOutcome {
    /// Destination popped: the finished result plus the queue key it
    /// popped at (the fence compares this against `pruned_min_f`).
    Found { result: AstarResult, f_pop: f64 },
    /// The open list went dry (`capped: None`) or the expansion budget
    /// was spent (`capped: Some(last popped tile)`) without reaching the
    /// destination. Either way, if nothing was pruned the failure is
    /// authoritative: the run explored exactly what a full-graph run
    /// would have (including hitting the expansion cap at the same pop).
    /// On a budget cap the capping pop is pushed back onto the queue, so
    /// the surviving open list stays complete for a warm continuation.
    Exhausted { capped: Option<TileId> },
    /// The cancel token tripped at a checkpoint; the search result is
    /// meaningless and must not be escalated or retried.
    Cancelled,
}

#[allow(clippy::too_many_arguments)] // internal; the public surface is route_traced_cancellable
fn search(
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
    opts: SearchOptions,
    cancel: Option<&CancelToken>,
    want_trace: bool,
    stats: &mut SearchStats,
) -> (Result<AstarResult, SearchFailure>, Vec<(usize, usize)>) {
    SCRATCH.with(|cell| {
        let mut s = cell.borrow_mut();
        let s = &mut *s;
        s.ensure(space);
        let tight0 = s.tightenings;
        // The arena lives in the scratch; take it out for the duration of
        // the search so the sink can borrow it alongside `s`.
        let mut arena = std::mem::take(&mut s.trace);
        let mut tree = BTreeSet::new();
        let mut sink = if !want_trace {
            None
        } else if opts.arena {
            let cfg = space.config();
            arena.begin(cfg.cells_x, cfg.cells_y);
            Some(TraceSink::Arena(&mut arena))
        } else {
            Some(TraceSink::Tree(&mut tree))
        };
        let result = search_inner(s, space, net, src, dst, opts, cancel, sink.as_mut(), stats);
        stats.heuristic_tightenings += s.tightenings - tight0;
        let cells = if !want_trace {
            Vec::new()
        } else if opts.arena {
            arena.take_sorted()
        } else {
            tree.into_iter().collect()
        };
        s.trace = arena;
        (result, cells)
    })
}

#[allow(clippy::too_many_arguments)] // internal; the public surface is route_traced_opts
fn search_inner(
    s: &mut SearchScratch,
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
    opts: SearchOptions,
    cancel: Option<&CancelToken>,
    mut trace: Option<&mut TraceSink<'_>>,
    stats: &mut SearchStats,
) -> Result<AstarResult, SearchFailure> {
    // A tripped token stops the search before any work; post-trip
    // searches in the same stage expand nothing.
    if cancel.is_some_and(CancelToken::should_stop) {
        return Err(SearchFailure::Cancelled);
    }
    if !opts.allow_vias && src.0 != dst.0 {
        return Err(SearchFailure::BlockedTerminal);
    }
    if let Some(t) = trace.as_deref_mut() {
        if let Some(c) = space.cell_of(src.1) {
            t.insert(c);
        }
        if let Some(c) = space.cell_of(dst.1) {
            t.insert(c);
        }
    }
    let (Some(src_tile), Some(dst_tile)) =
        (space.tile_at(src.0, src.1, net), space.tile_at(dst.0, dst.1, net))
    else {
        return Err(SearchFailure::BlockedTerminal);
    };
    stats.searches += 1;
    let cross_layer = src.0 != dst.0;

    {
        s.retune_h((space.revision(), dst.0, dst.1, space.config().via_cost.to_bits()));
        // Resolve the ALT target node once per search (`None` keeps the
        // heuristic purely geometric). Sharing the h-cache key is sound:
        // `set_landmarks` bumps the space revision, so cached values can
        // never mix with/without-table heuristics.
        s.alt = space
            .landmarks()
            .and_then(|lm| lm.node_at(dst.0.index(), dst.1).map(|b| (Arc::clone(lm), b)));
        s.queue.reset_peak();
        let via_cost = space.config().via_cost;
        // A cross-layer search that never enumerates a single via
        // adjacency is stranded by via capacity, not by congestion.
        let mut saw_via = false;
        let no_path = |saw_via: bool| {
            if cross_layer && !saw_via {
                SearchFailure::NoViaPath { cell: space.tile(src_tile).cell }
            } else {
                SearchFailure::Exhausted
            }
        };
        let budget = opts.expansion_budget.unwrap_or(MAX_EXPANSIONS);

        if opts.windowed {
            s.set_window(space, src.1, dst.1);
            s.next_gen();
            s.queue.clear(Some(bucket_width(space)));
            seed_source(s, src, dst, src_tile, via_cost);
            let mut pruned_min_f = f64::INFINITY;
            let mut pruned = std::mem::take(&mut s.pruned);
            pruned.clear();
            let outcome = run(
                s,
                space,
                net,
                dst,
                dst_tile,
                opts.allow_vias,
                true,
                budget,
                Some((&mut pruned_min_f, &mut pruned)),
                cancel,
                trace.as_deref_mut(),
                stats,
                &mut saw_via,
            );
            let verdict = match outcome {
                // A tripped token aborts immediately — never escalate a
                // cancelled windowed run.
                RunOutcome::Cancelled => Some(Err(SearchFailure::Cancelled)),
                // Fence: every pop was ≤ f_pop < every pruned key, so the
                // full search would have popped the identical sequence.
                RunOutcome::Found { result, f_pop } if f_pop < pruned_min_f => Some(Ok(result)),
                // Nothing was ever pruned: the windowed run *was* the
                // full-graph run, so its failure is authoritative.
                RunOutcome::Exhausted { capped: None } if pruned_min_f.is_infinite() => {
                    Some(Err(no_path(saw_via)))
                }
                RunOutcome::Exhausted { capped: Some(t) } if pruned_min_f.is_infinite() => {
                    Some(Err(SearchFailure::BudgetCapped { last_tile: t }))
                }
                outcome => {
                    // Escalate — warm. The node states, heuristic cache,
                    // and surviving open list all carry over; the pruned
                    // edges are re-injected through the normal relax
                    // condition (which permits improvement, so A* stays
                    // optimal with the consistent heuristic even when a
                    // window-interior node must be re-expanded). Only the
                    // frontier the window actually cut off is explored
                    // again, instead of the whole reachable graph.
                    stats.window_escalations += 1;
                    let before = stats.nodes_expanded;
                    for e in &pruned {
                        inject_pruned(s, space, e, trace.as_deref_mut());
                    }
                    if matches!(outcome, RunOutcome::Found { .. }) {
                        // The destination's queue entry was consumed by
                        // the (unproven) windowed accept; restore it.
                        let di = dst_tile.0 as usize;
                        if s.stamp[di] == s.gen {
                            let (g_d, e_d) = (s.g[di], s.entry[di]);
                            let h_d = s.h(dst_tile.0, e_d, dst.0, &dst, via_cost);
                            s.queue.push((g_d + h_d).to_bits(), dst_tile.0);
                        }
                    }
                    let continued = run(
                        s,
                        space,
                        net,
                        dst,
                        dst_tile,
                        opts.allow_vias,
                        false,
                        budget,
                        None,
                        cancel,
                        trace.as_deref_mut(),
                        stats,
                        &mut saw_via,
                    );
                    stats.escalation_expansions += stats.nodes_expanded - before;
                    Some(match continued {
                        RunOutcome::Found { result, .. } => Ok(result),
                        RunOutcome::Exhausted { capped: Some(t) } => {
                            Err(SearchFailure::BudgetCapped { last_tile: t })
                        }
                        RunOutcome::Exhausted { capped: None } => Err(no_path(saw_via)),
                        RunOutcome::Cancelled => Err(SearchFailure::Cancelled),
                    })
                }
            };
            s.pruned = pruned;
            if let Some(v) = verdict {
                return v;
            }
        }
        s.next_gen();
        s.queue.clear(Some(bucket_width(space)));
        seed_source(s, src, dst, src_tile, via_cost);
        match run(
            s,
            space,
            net,
            dst,
            dst_tile,
            opts.allow_vias,
            false,
            budget,
            None,
            cancel,
            trace,
            stats,
            &mut saw_via,
        ) {
            RunOutcome::Found { result, .. } => Ok(result),
            RunOutcome::Exhausted { capped: Some(t) } => {
                Err(SearchFailure::BudgetCapped { last_tile: t })
            }
            RunOutcome::Exhausted { capped: None } => Err(no_path(saw_via)),
            RunOutcome::Cancelled => Err(SearchFailure::Cancelled),
        }
    }
}

/// Bucket width for the open list: one via penalty (≥ one tile thickness)
/// groups a search's frontier into a handful of buckets without letting
/// any bucket grow die-sized.
fn bucket_width(space: &RoutingSpace) -> f64 {
    space.config().via_cost.max(space.config().min_thickness as f64).max(64.0)
}

/// Seeds the (freshly cleared) scratch state with the source node.
fn seed_source(
    s: &mut SearchScratch,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
    src_tile: TileId,
    via_cost: f64,
) {
    let si = src_tile.0 as usize;
    s.stamp[si] = s.gen;
    s.g[si] = 0.0;
    s.entry[si] = src.1;
    s.parent[si] = NO_PARENT;
    s.via[si] = None;
    let h0 = s.h(src_tile.0, src.1, src.0, &dst, via_cost);
    s.queue.push(h0.to_bits(), src_tile.0);
}

/// Re-injects one pruned edge into the live search state, through the same
/// relax condition `run` uses (improvements win; stale entries are caught
/// by the pop-time check).
fn inject_pruned(
    s: &mut SearchScratch,
    space: &RoutingSpace,
    e: &PrunedEdge,
    trace: Option<&mut TraceSink<'_>>,
) {
    let to = e.to as usize;
    if s.stamp[to] != s.gen || e.g < s.g[to] - 1e-9 {
        if let Some(t) = trace {
            t.insert(space.tile(TileId(e.to)).cell);
        }
        s.stamp[to] = s.gen;
        s.g[to] = e.g;
        s.entry[to] = e.entry;
        s.parent[to] = e.parent;
        s.via[to] = e.via;
        s.queue.push(e.f_bits, e.to);
    }
}

/// One bounded A\* run over the tile graph, windowed or full. The caller
/// owns generation/queue setup (`next_gen` + `clear` + [`seed_source`]),
/// which is what lets an escalated continuation resume the same
/// generation with the surviving open list intact.
#[allow(clippy::too_many_arguments)]
fn run(
    s: &mut SearchScratch,
    space: &RoutingSpace,
    net: NetId,
    dst: (WireLayer, Point),
    dst_tile: TileId,
    allow_vias: bool,
    windowed: bool,
    budget: usize,
    mut pruned_sink: Option<(&mut f64, &mut Vec<PrunedEdge>)>,
    cancel: Option<&CancelToken>,
    mut trace: Option<&mut TraceSink<'_>>,
    stats: &mut SearchStats,
    saw_via: &mut bool,
) -> RunOutcome {
    let via_cost = space.config().via_cost;
    let cells_x = space.config().cells_x;
    // Negotiated-congestion cost layers, when installed: a non-negative
    // penalty added to g whenever a move enters a new (layer, cell)
    // resource. Penalties only increase edge costs, so the geometric
    // heuristic stays an admissible, consistent lower bound and every
    // fence comparison below sees consistently inflated f values.
    let cong = space.congestion();

    let mut expansions = 0usize;

    while let Some((fbits, tid_raw)) = s.queue.pop() {
        let tid = TileId(tid_raw);
        let ti = tid_raw as usize;
        let f_popped = f64::from_bits(fbits);
        let node_g = s.g[ti];
        let node_entry = s.entry[ti];
        if let Some(t) = trace.as_deref_mut() {
            t.insert(space.tile(tid).cell);
        }
        let layer = space.tile(tid).layer;
        let node_cell = space.tile(tid).cell;
        // Stale heap entry?
        if f_popped > node_g + s.h(tid_raw, node_entry, layer, &dst, via_cost) + 1e-6 {
            continue;
        }
        if tid == dst_tile {
            // Reconstruct.
            let mut steps = Vec::new();
            let mut cur = tid_raw;
            loop {
                steps.push(PathStep {
                    tile: TileId(cur),
                    entry: s.entry[cur as usize],
                    via: s.via[cur as usize],
                });
                cur = s.parent[cur as usize];
                if cur == NO_PARENT {
                    break;
                }
            }
            steps.reverse();
            // Cost of the path actually returned, recomputed over the
            // final parent chain. This can differ (rarely) from the
            // accumulated g: a tile's entry point may improve *after* a
            // child's parent pointer was set from the old entry, and the
            // chain snapshot is what realization consumes. The recompute
            // makes `cost` exactly the edge-cost sum of `steps` — the
            // invariant the search property suite pins.
            let mut cost = 0.0;
            for i in 1..steps.len() {
                cost += x_arch_len(steps[i - 1].entry, steps[i].entry);
                if steps[i].via.is_some() {
                    cost += via_cost;
                }
            }
            cost += x_arch_len(steps[steps.len() - 1].entry, dst.1);
            stats.heap_peak = stats.heap_peak.max(s.queue.peak() as u64);
            return RunOutcome::Found {
                result: AstarResult { steps, cost, f_accept: f_popped, g_accept: node_g },
                f_pop: f_popped,
            };
        }
        expansions += 1;
        stats.nodes_expanded += 1;
        // Cooperative cancellation checkpoint, once per CHECK_INTERVAL
        // expansions (the first at expansion 1, so a post-trip run stops
        // after a single expansion). With no token — or a quiet one — the
        // pop sequence is untouched, so results stay bit-identical.
        if expansions as u64 % CHECK_INTERVAL == 1 {
            if let Some(c) = cancel {
                if c.checkpoint() {
                    stats.heap_peak = stats.heap_peak.max(s.queue.peak() as u64);
                    return RunOutcome::Cancelled;
                }
            }
        }
        if expansions > budget {
            // Put the capping pop back so the surviving open list is a
            // complete frontier for a warm continuation.
            s.queue.push(fbits, tid_raw);
            stats.heap_peak = stats.heap_peak.max(s.queue.peak() as u64);
            return RunOutcome::Exhausted { capped: Some(tid) };
        }

        // Planar moves.
        let mut nbr = std::mem::take(&mut s.nbr);
        space.planar_neighbors_into(tid, net, &mut nbr);
        for e in &nbr {
            let cross = e.crossing.midpoint();
            let to = e.to.0 as usize;
            let to_layer = space.tile(e.to).layer;
            let to_cell = space.tile(e.to).cell;
            let pen = match cong {
                Some(m) if to_cell != node_cell => m.cell_penalty(to_layer.index(), to_cell),
                _ => 0.0,
            };
            let g2 = node_g + x_arch_len(node_entry, cross) + pen;
            if windowed && !s.in_window(cells_x, space.tile(e.to).cell) {
                if let Some((min_f, edges)) = pruned_sink.as_mut() {
                    let f2 = g2 + s.h(e.to.0, cross, to_layer, &dst, via_cost);
                    **min_f = min_f.min(f2);
                    edges.push(PrunedEdge {
                        to: e.to.0,
                        f_bits: f2.to_bits(),
                        g: g2,
                        entry: cross,
                        parent: tid_raw,
                        via: None,
                    });
                }
                continue;
            }
            if s.stamp[to] != s.gen || g2 < s.g[to] - 1e-9 {
                if let Some(t) = trace.as_deref_mut() {
                    t.insert(space.tile(e.to).cell);
                }
                s.stamp[to] = s.gen;
                s.g[to] = g2;
                s.entry[to] = cross;
                s.parent[to] = tid_raw;
                s.via[to] = None;
                let f2 = g2 + s.h(e.to.0, cross, to_layer, &dst, via_cost);
                s.queue.push(f2.to_bits(), e.to.0);
            }
        }
        s.nbr = nbr;

        // Via moves.
        if !allow_vias {
            continue;
        }
        let mut vnbr = std::mem::take(&mut s.vnbr);
        space.via_neighbors_into(tid, net, &mut vnbr);
        if !vnbr.is_empty() {
            *saw_via = true;
        }
        for &(to_tile, site) in &vnbr {
            let to = to_tile.0 as usize;
            let to_layer = space.tile(to_tile).layer;
            // A via always enters a new (layer, cell) resource: charge
            // the landing layer's cell plus the cell's via layer.
            let pen = cong.map_or(0.0, |m| {
                let tc = space.tile(to_tile).cell;
                m.via_penalty(tc) + m.cell_penalty(to_layer.index(), tc)
            });
            let g2 = node_g + x_arch_len(node_entry, site) + via_cost + pen;
            let (upper, lower) =
                if to_layer > layer { (layer, to_layer) } else { (to_layer, layer) };
            if windowed && !s.in_window(cells_x, space.tile(to_tile).cell) {
                if let Some((min_f, edges)) = pruned_sink.as_mut() {
                    let f2 = g2 + s.h(to_tile.0, site, to_layer, &dst, via_cost);
                    **min_f = min_f.min(f2);
                    edges.push(PrunedEdge {
                        to: to_tile.0,
                        f_bits: f2.to_bits(),
                        g: g2,
                        entry: site,
                        parent: tid_raw,
                        via: Some((site, upper, lower)),
                    });
                }
                continue;
            }
            if s.stamp[to] != s.gen || g2 < s.g[to] - 1e-9 {
                if let Some(t) = trace.as_deref_mut() {
                    t.insert(space.tile(to_tile).cell);
                }
                s.stamp[to] = s.gen;
                s.g[to] = g2;
                s.entry[to] = site;
                s.parent[to] = tid_raw;
                s.via[to] = Some((site, upper, lower));
                let f2 = g2 + s.h(to_tile.0, site, to_layer, &dst, via_cost);
                s.queue.push(f2.to_bits(), to_tile.0);
            }
        }
        s.vnbr = vnbr;
    }
    stats.heap_peak = stats.heap_peak.max(s.queue.peak() as u64);
    RunOutcome::Exhausted { capped: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceConfig;
    use info_geom::{Point, Polyline, Rect};
    use info_model::{DesignRules, Layout, PackageBuilder};

    fn pkg_two_layer() -> info_model::Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(400_000, 400_000)),
            DesignRules::default(),
            2,
        );
        let c = b.add_chip(Rect::new(Point::new(40_000, 40_000), Point::new(160_000, 160_000)));
        let p = b.add_io_pad(c, Point::new(100_000, 100_000)).unwrap();
        let g = b.add_bump_pad(Point::new(300_000, 300_000)).unwrap();
        b.add_net(p, g).unwrap();
        b.build().unwrap()
    }

    fn cfg() -> SpaceConfig {
        SpaceConfig {
            cells_x: 4,
            cells_y: 4,
            clearance: 4_000,
            min_thickness: 4_000,
            via_width: 5_000,
            via_cost: 20_000.0,
            adjacency_cache: true,
        }
    }

    #[test]
    fn same_layer_route_found() {
        let pkg = pkg_two_layer();
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        let r = route(
            &space,
            NetId(0),
            (WireLayer(0), Point::new(100_000, 100_000)),
            (WireLayer(0), Point::new(300_000, 100_000)),
        )
        .expect("open space route");
        assert!(!r.steps.is_empty());
        assert_eq!(r.steps[0].entry, Point::new(100_000, 100_000));
        // Cost at least the straight distance.
        assert!(r.cost >= 200_000.0 - 1.0);
        // No vias needed.
        assert!(r.steps.iter().all(|s| s.via.is_none()));
    }

    #[test]
    fn cross_layer_route_uses_via() {
        let pkg = pkg_two_layer();
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        // The real net: I/O pad on layer 0 to bump pad on layer 1.
        let r = route(
            &space,
            NetId(0),
            (WireLayer(0), Point::new(100_000, 100_000)),
            (WireLayer(1), Point::new(300_000, 300_000)),
        )
        .expect("via-based route");
        let via_steps: Vec<_> = r.steps.iter().filter(|s| s.via.is_some()).collect();
        assert_eq!(via_steps.len(), 1, "exactly one layer change expected");
        assert!(r.cost >= 20_000.0, "via cost charged");
    }

    #[test]
    fn blocked_terminal_fails() {
        let pkg = pkg_two_layer();
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        // A foreign net cannot start on net 0's pad.
        assert!(route(
            &space,
            NetId(7),
            (WireLayer(0), Point::new(100_000, 100_000)),
            (WireLayer(0), Point::new(300_000, 100_000)),
        )
        .is_none());
    }

    #[test]
    fn wall_of_wires_forces_detour_or_failure() {
        let pkg = pkg_two_layer();
        let mut layout = Layout::new(&pkg);
        // Fence the die vertically at x = 200_000 on layer 0 with a foreign
        // wire from top to bottom.
        layout.add_route(
            NetId(3),
            WireLayer(0),
            Polyline::new(vec![Point::new(200_000, 0), Point::new(200_000, 400_000)]),
        );
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        // Same-layer route for net 0 must fail on layer 0 alone...
        let direct = route(
            &space,
            NetId(0),
            (WireLayer(0), Point::new(100_000, 200_000)),
            (WireLayer(0), Point::new(300_000, 200_000)),
        );
        // ... unless it dives to layer 1 through a via, which is allowed
        // and expected (via-based routing is the whole point).
        match direct {
            Some(r) => {
                assert!(
                    r.steps.iter().filter(|s| s.via.is_some()).count() >= 2,
                    "crossing the fence on one layer is impossible; must dive and resurface"
                );
            }
            None => {
                // Acceptable only if no via site existed; with open space
                // this should not happen.
                panic!("expected a via detour around the fence");
            }
        }
    }

    #[test]
    fn fence_on_both_layers_fails() {
        let pkg = pkg_two_layer();
        let mut layout = Layout::new(&pkg);
        for layer in [WireLayer(0), WireLayer(1)] {
            layout.add_route(
                NetId(3),
                layer,
                Polyline::new(vec![Point::new(200_000, 0), Point::new(200_000, 400_000)]),
            );
        }
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        assert!(route(
            &space,
            NetId(0),
            (WireLayer(0), Point::new(100_000, 200_000)),
            (WireLayer(0), Point::new(300_000, 200_000)),
        )
        .is_none());
    }

    #[test]
    fn windowed_matches_full_graph_and_reports_stats() {
        let pkg = pkg_two_layer();
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        let src = (WireLayer(0), Point::new(100_000, 100_000));
        let dst = (WireLayer(1), Point::new(300_000, 300_000));
        let mut ws = SearchStats::default();
        let mut fs = SearchStats::default();
        let (win, _) = route_traced_opts(
            &space,
            NetId(0),
            src,
            dst,
            SearchOptions { windowed: true, allow_vias: true, arena: true, expansion_budget: None },
            &mut ws,
        );
        let (full, _) = route_traced_opts(
            &space,
            NetId(0),
            src,
            dst,
            SearchOptions { windowed: false, allow_vias: true, arena: true, expansion_budget: None },
            &mut fs,
        );
        let win = win.expect("windowed route");
        let full = full.expect("full route");
        assert_eq!(win.cost.to_bits(), full.cost.to_bits(), "bit-identical cost");
        assert_eq!(win.steps, full.steps, "identical step sequence");
        assert!(ws.searches == 1 && fs.searches == 1);
        assert!(ws.nodes_expanded > 0 && ws.heap_peak > 0);
    }
}
