//! A\*-search over the multi-layer tile graph (§III-D).

use crate::space::{RoutingSpace, TileId};
use info_geom::{x_arch_len, Point};
use info_model::{NetId, WireLayer};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// One step of a tile path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    /// The tile being traversed.
    pub tile: TileId,
    /// The point at which the path enters the tile (the source point for
    /// the first step; the crossing midpoint or via site afterwards).
    pub entry: Point,
    /// When this step changed layers, the via use `(site, upper, lower)`.
    pub via: Option<(Point, WireLayer, WireLayer)>,
}

/// Result of a successful search.
#[derive(Debug, Clone)]
pub struct AstarResult {
    /// The steps from source tile to destination tile, inclusive.
    pub steps: Vec<PathStep>,
    /// Total path cost (wirelength estimate plus via penalties), in nm.
    pub cost: f64,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    g: f64,
    entry: Point,
    parent: Option<TileId>,
    via: Option<(Point, WireLayer, WireLayer)>,
}

/// Routes `net` from `(src_layer, src)` to `(dst_layer, dst)` over the
/// tile space, returning the tile path, or `None` when the terminals are
/// unreachable (blocked terminals, disconnected free space, or exhausted
/// expansion budget).
pub fn route(
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
) -> Option<AstarResult> {
    route_with(space, net, src, dst, true)
}

/// [`route`] with flexible-via use controllable: with `allow_vias = false`
/// the search stays on the source layer (the no-flexible-via regime of the
/// prior-work baseline), so `src` and `dst` must share a layer.
pub fn route_with(
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
    allow_vias: bool,
) -> Option<AstarResult> {
    search(space, net, src, dst, allow_vias, None)
}

/// [`route`] that additionally reports the global cells the search read:
/// the terminals' cells plus the cell of every tile reached by the search
/// frontier. Neighbor enumeration only examines the 4-adjacent cells of a
/// reached tile, so the returned set expanded by one cell ring covers
/// everything whose tiles, wires, or via sites could influence the result
/// — the read set the speculative parallel router checks against commits.
pub fn route_traced(
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
) -> (Option<AstarResult>, Vec<(usize, usize)>) {
    let mut cells = BTreeSet::new();
    let result = search(space, net, src, dst, true, Some(&mut cells));
    (result, cells.into_iter().collect())
}

fn search(
    space: &RoutingSpace,
    net: NetId,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
    allow_vias: bool,
    mut trace: Option<&mut BTreeSet<(usize, usize)>>,
) -> Option<AstarResult> {
    if !allow_vias && src.0 != dst.0 {
        return None;
    }
    if let Some(t) = trace.as_deref_mut() {
        t.extend(space.cell_of(src.1));
        t.extend(space.cell_of(dst.1));
    }
    let mut note = move |cell: (usize, usize)| {
        if let Some(t) = trace.as_deref_mut() {
            t.insert(cell);
        }
    };
    let src_tile = space.tile_at(src.0, src.1, net)?;
    let dst_tile = space.tile_at(dst.0, dst.1, net)?;
    let via_cost = space.config().via_cost;

    let h = |p: Point, layer: WireLayer| -> f64 {
        let hops = layer.index().abs_diff(dst.0.index()) as f64;
        x_arch_len(p, dst.1) + hops * via_cost
    };

    let mut best: HashMap<TileId, Node> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    best.insert(src_tile, Node { g: 0.0, entry: src.1, parent: None, via: None });
    heap.push(Reverse((h(src.1, src.0).to_bits(), src_tile.0)));

    // Expansion budget keeps pathological searches bounded: legitimate
    // paths expand a few thousand tiles; a flat cap keeps *failing*
    // searches (which otherwise sweep the whole reachable space) cheap on
    // large circuits.
    let mut expansions = 0usize;
    let max_expansions = 60_000;

    while let Some(Reverse((fbits, tid_raw))) = heap.pop() {
        let tid = TileId(tid_raw);
        let node = best[&tid];
        let f_popped = f64::from_bits(fbits);
        note(space.tile(tid).cell);
        let layer = space.tile(tid).layer;
        // Stale heap entry?
        if f_popped > node.g + h(node.entry, layer) + 1e-6 {
            continue;
        }
        if tid == dst_tile {
            // Reconstruct.
            let mut steps = Vec::new();
            let mut cur = Some(tid);
            while let Some(c) = cur {
                let n = best[&c];
                steps.push(PathStep { tile: c, entry: n.entry, via: n.via });
                cur = n.parent;
            }
            steps.reverse();
            let cost = node.g + x_arch_len(node.entry, dst.1);
            return Some(AstarResult { steps, cost });
        }
        expansions += 1;
        if expansions > max_expansions {
            return None;
        }

        // Planar moves.
        for e in space.planar_neighbors(tid, net) {
            let cross = e.crossing.midpoint();
            let g2 = node.g + x_arch_len(node.entry, cross);
            let to_layer = space.tile(e.to).layer;
            if best.get(&e.to).is_none_or(|n| g2 < n.g - 1e-9) {
                note(space.tile(e.to).cell);
                best.insert(e.to, Node { g: g2, entry: cross, parent: Some(tid), via: None });
                heap.push(Reverse(((g2 + h(cross, to_layer)).to_bits(), e.to.0)));
            }
        }
        // Via moves.
        if !allow_vias {
            continue;
        }
        for (to, site) in space.via_neighbors(tid, net) {
            let g2 = node.g + x_arch_len(node.entry, site) + via_cost;
            let to_layer = space.tile(to).layer;
            let (upper, lower) = if to_layer > layer { (layer, to_layer) } else { (to_layer, layer) };
            if best.get(&to).is_none_or(|n| g2 < n.g - 1e-9) {
                note(space.tile(to).cell);
                best.insert(
                    to,
                    Node { g: g2, entry: site, parent: Some(tid), via: Some((site, upper, lower)) },
                );
                heap.push(Reverse(((g2 + h(site, to_layer)).to_bits(), to.0)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceConfig;
    use info_geom::{Point, Polyline, Rect};
    use info_model::{DesignRules, Layout, PackageBuilder};

    fn pkg_two_layer() -> info_model::Package {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(400_000, 400_000)),
            DesignRules::default(),
            2,
        );
        let c = b.add_chip(Rect::new(Point::new(40_000, 40_000), Point::new(160_000, 160_000)));
        let p = b.add_io_pad(c, Point::new(100_000, 100_000)).unwrap();
        let g = b.add_bump_pad(Point::new(300_000, 300_000)).unwrap();
        b.add_net(p, g).unwrap();
        b.build().unwrap()
    }

    fn cfg() -> SpaceConfig {
        SpaceConfig {
            cells_x: 4,
            cells_y: 4,
            clearance: 4_000,
            min_thickness: 4_000,
            via_width: 5_000,
            via_cost: 20_000.0,
        }
    }

    #[test]
    fn same_layer_route_found() {
        let pkg = pkg_two_layer();
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        let r = route(
            &space,
            NetId(0),
            (WireLayer(0), Point::new(100_000, 100_000)),
            (WireLayer(0), Point::new(300_000, 100_000)),
        )
        .expect("open space route");
        assert!(!r.steps.is_empty());
        assert_eq!(r.steps[0].entry, Point::new(100_000, 100_000));
        // Cost at least the straight distance.
        assert!(r.cost >= 200_000.0 - 1.0);
        // No vias needed.
        assert!(r.steps.iter().all(|s| s.via.is_none()));
    }

    #[test]
    fn cross_layer_route_uses_via() {
        let pkg = pkg_two_layer();
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        // The real net: I/O pad on layer 0 to bump pad on layer 1.
        let r = route(
            &space,
            NetId(0),
            (WireLayer(0), Point::new(100_000, 100_000)),
            (WireLayer(1), Point::new(300_000, 300_000)),
        )
        .expect("via-based route");
        let via_steps: Vec<_> = r.steps.iter().filter(|s| s.via.is_some()).collect();
        assert_eq!(via_steps.len(), 1, "exactly one layer change expected");
        assert!(r.cost >= 20_000.0, "via cost charged");
    }

    #[test]
    fn blocked_terminal_fails() {
        let pkg = pkg_two_layer();
        let layout = Layout::new(&pkg);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        // A foreign net cannot start on net 0's pad.
        assert!(route(
            &space,
            NetId(7),
            (WireLayer(0), Point::new(100_000, 100_000)),
            (WireLayer(0), Point::new(300_000, 100_000)),
        )
        .is_none());
    }

    #[test]
    fn wall_of_wires_forces_detour_or_failure() {
        let pkg = pkg_two_layer();
        let mut layout = Layout::new(&pkg);
        // Fence the die vertically at x = 200_000 on layer 0 with a foreign
        // wire from top to bottom.
        layout.add_route(
            NetId(3),
            WireLayer(0),
            Polyline::new(vec![Point::new(200_000, 0), Point::new(200_000, 400_000)]),
        );
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        // Same-layer route for net 0 must fail on layer 0 alone...
        let direct = route(
            &space,
            NetId(0),
            (WireLayer(0), Point::new(100_000, 200_000)),
            (WireLayer(0), Point::new(300_000, 200_000)),
        );
        // ... unless it dives to layer 1 through a via, which is allowed
        // and expected (via-based routing is the whole point).
        match direct {
            Some(r) => {
                assert!(
                    r.steps.iter().filter(|s| s.via.is_some()).count() >= 2,
                    "crossing the fence on one layer is impossible; must dive and resurface"
                );
            }
            None => {
                // Acceptable only if no via site existed; with open space
                // this should not happen.
                panic!("expected a via detour around the fence");
            }
        }
    }

    #[test]
    fn fence_on_both_layers_fails() {
        let pkg = pkg_two_layer();
        let mut layout = Layout::new(&pkg);
        for layer in [WireLayer(0), WireLayer(1)] {
            layout.add_route(
                NetId(3),
                layer,
                Polyline::new(vec![Point::new(200_000, 0), Point::new(200_000, 400_000)]),
            );
        }
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        assert!(route(
            &space,
            NetId(0),
            (WireLayer(0), Point::new(100_000, 200_000)),
            (WireLayer(0), Point::new(300_000, 200_000)),
        )
        .is_none());
    }
}
