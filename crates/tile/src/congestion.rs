//! Negotiated-congestion cost layers (PathFinder-style, DESIGN.md §4h).
//!
//! A [`CongestionMap`] holds two non-negative cost fields over the global
//! cells of a [`RoutingSpace`](crate::space::RoutingSpace):
//!
//! - **present congestion** — integer occupancy counts of the current
//!   iteration's committed geometry, per `(layer, cell)` for wires and
//!   per cell for vias. Integer adds/removes commute, so present updates
//!   are order-invariant within an iteration by construction.
//! - **history cost** — a monotonically non-decreasing `f64` field that
//!   the negotiation driver escalates on contested cells between
//!   iterations. History never decays and is only ever written in
//!   iteration-boundary batches, which keeps the whole cost state
//!   independent of net commit order and thread count.
//!
//! The A\* expansion loop folds these into the edge cost **g** as a
//! non-negative penalty charged when a move enters a new `(layer, cell)`
//! resource (every via move changes layer, so every via move is charged).
//! Because the penalty only ever *adds* to edge costs, the geometric
//! heuristic stays an admissible and consistent lower bound, and the
//! windowed-search fence argument is unchanged — both sides of every
//! fence comparison carry the same penalties.
//!
//! Weights are in nanometres: `penalty = history_weight * history +
//! present_weight * present`. The negotiation driver picks weights
//! relative to the global cell pitch so one unit of history is worth a
//! deliberate detour of a fraction of a cell.

/// Per-cell present-congestion and history cost fields (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    cells_x: usize,
    cells_y: usize,
    layers: usize,
    present_weight: f64,
    history_weight: f64,
    /// Per `(layer, cell)`, indexed `(layer * cells_y + cy) * cells_x + cx`.
    hist: Vec<f64>,
    present: Vec<u32>,
    /// Per cell, indexed `cy * cells_x + cx`.
    via_hist: Vec<f64>,
    via_present: Vec<u32>,
}

impl CongestionMap {
    /// A zeroed map over `layers` wire layers of a `cells_x` × `cells_y`
    /// global grid. `present_weight` and `history_weight` are the
    /// nanometre cost of one unit of present occupancy / history.
    pub fn new(
        cells_x: usize,
        cells_y: usize,
        layers: usize,
        present_weight: f64,
        history_weight: f64,
    ) -> Self {
        let ncells = cells_x * cells_y;
        CongestionMap {
            cells_x,
            cells_y,
            layers,
            present_weight: present_weight.max(0.0),
            history_weight: history_weight.max(0.0),
            hist: vec![0.0; ncells * layers],
            present: vec![0; ncells * layers],
            via_hist: vec![0.0; ncells],
            via_present: vec![0; ncells],
        }
    }

    #[inline]
    fn idx(&self, layer: usize, cx: usize, cy: usize) -> usize {
        (layer * self.cells_y + cy) * self.cells_x + cx
    }

    #[inline]
    fn via_idx(&self, cx: usize, cy: usize) -> usize {
        cy * self.cells_x + cx
    }

    /// Penalty (nm) for entering `(layer, cell)`. Always ≥ 0.
    #[inline]
    pub fn cell_penalty(&self, layer: usize, (cx, cy): (usize, usize)) -> f64 {
        let i = self.idx(layer, cx, cy);
        self.history_weight * self.hist[i] + self.present_weight * f64::from(self.present[i])
    }

    /// Penalty (nm) for using a via in `cell`, on top of the entered
    /// layer's [`cell_penalty`](Self::cell_penalty). Always ≥ 0.
    #[inline]
    pub fn via_penalty(&self, (cx, cy): (usize, usize)) -> f64 {
        let i = self.via_idx(cx, cy);
        self.history_weight * self.via_hist[i]
            + self.present_weight * f64::from(self.via_present[i])
    }

    /// Escalates the history of one `(layer, cell)`. `amount` must be
    /// ≥ 0 — history is monotone by contract; negative amounts are
    /// clamped to zero.
    pub fn add_history(&mut self, layer: usize, cx: usize, cy: usize, amount: f64) {
        let i = self.idx(layer, cx, cy);
        self.hist[i] += amount.max(0.0);
    }

    /// Escalates the via history of one cell (clamped to ≥ 0 like
    /// [`add_history`](Self::add_history)).
    pub fn add_via_history(&mut self, cx: usize, cy: usize, amount: f64) {
        let i = self.via_idx(cx, cy);
        self.via_hist[i] += amount.max(0.0);
    }

    /// Adjusts the present occupancy of one `(layer, cell)` by `delta`
    /// nets (saturating at zero).
    pub fn note_present(&mut self, layer: usize, cx: usize, cy: usize, delta: i64) {
        let i = self.idx(layer, cx, cy);
        self.present[i] = apply_delta(self.present[i], delta);
    }

    /// Adjusts the present via occupancy of one cell by `delta` nets
    /// (saturating at zero).
    pub fn note_via_present(&mut self, cx: usize, cy: usize, delta: i64) {
        let i = self.via_idx(cx, cy);
        self.via_present[i] = apply_delta(self.via_present[i], delta);
    }

    /// Zeroes every present count (history is untouched — it never
    /// decreases). The negotiation driver calls this before re-deriving
    /// occupancy from the committed layout at an iteration boundary.
    pub fn clear_present(&mut self) {
        self.present.fill(0);
        self.via_present.fill(0);
    }

    /// Total history mass (wire + via) — the monotone convergence gauge
    /// the negotiation driver snapshots per iteration into
    /// `NegotiationStats::history_totals`.
    pub fn total_history(&self) -> f64 {
        self.hist.iter().sum::<f64>() + self.via_hist.iter().sum::<f64>()
    }

    /// History of one `(layer, cell)` (test observability).
    pub fn history_at(&self, layer: usize, cx: usize, cy: usize) -> f64 {
        self.hist[self.idx(layer, cx, cy)]
    }

    /// Present occupancy of one `(layer, cell)` (test observability).
    pub fn present_at(&self, layer: usize, cx: usize, cy: usize) -> u32 {
        self.present[self.idx(layer, cx, cy)]
    }

    /// Grid dimensions `(cells_x, cells_y, layers)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.cells_x, self.cells_y, self.layers)
    }
}

fn apply_delta(current: u32, delta: i64) -> u32 {
    let next = i64::from(current) + delta;
    u32::try_from(next.max(0)).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalties_reflect_weights() {
        let mut m = CongestionMap::new(4, 4, 2, 10.0, 100.0);
        assert_eq!(m.cell_penalty(0, (1, 1)), 0.0);
        m.note_present(0, 1, 1, 2);
        m.add_history(0, 1, 1, 1.5);
        assert!((m.cell_penalty(0, (1, 1)) - (100.0 * 1.5 + 10.0 * 2.0)).abs() < 1e-9);
        // The other layer's cell is an independent resource.
        assert_eq!(m.cell_penalty(1, (1, 1)), 0.0);
        m.note_via_present(2, 3, 1);
        m.add_via_history(2, 3, 0.5);
        assert!((m.via_penalty((2, 3)) - (100.0 * 0.5 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn present_saturates_at_zero() {
        let mut m = CongestionMap::new(2, 2, 1, 1.0, 1.0);
        m.note_present(0, 0, 0, -3);
        assert_eq!(m.present_at(0, 0, 0), 0);
        m.note_present(0, 0, 0, 2);
        m.note_present(0, 0, 0, -1);
        assert_eq!(m.present_at(0, 0, 0), 1);
    }

    #[test]
    fn history_is_monotone_and_clamped() {
        let mut m = CongestionMap::new(2, 2, 1, 1.0, 1.0);
        m.add_history(0, 0, 0, 1.0);
        m.add_history(0, 0, 0, -5.0); // clamped: no decrease
        assert_eq!(m.history_at(0, 0, 0), 1.0);
        m.clear_present();
        assert_eq!(m.history_at(0, 0, 0), 1.0, "clear_present must not touch history");
    }

    #[test]
    fn updates_commute_within_an_iteration() {
        // The order-invariance contract: any permutation of the same
        // multiset of updates produces an identical map.
        let updates: Vec<(usize, usize, usize, i64)> =
            vec![(0, 1, 0, 1), (1, 0, 1, 2), (0, 1, 0, 1), (1, 1, 1, 1), (0, 0, 0, -1)];
        let mut fwd = CongestionMap::new(2, 2, 2, 3.0, 7.0);
        let mut rev = fwd.clone();
        for &(l, x, y, d) in &updates {
            fwd.note_present(l, x, y, d);
        }
        for &(l, x, y, d) in updates.iter().rev() {
            rev.note_present(l, x, y, d);
        }
        assert_eq!(fwd, rev);
    }
}
