//! Layout partitioning and the octagonal-tile routing graph.
//!
//! This crate provides the geometric search substrate of the paper's flow:
//!
//! - [`partition`] — Ohtsuki-style line-extension partitioning of a region
//!   with rectangular holes into rectangular cells \[15\], plus the grid
//!   merging of Lee et al. \[6\] to combat fragmentation (§III-A2).
//! - [`cell_graph`] — the fan-out grid graph with boundary capacities and
//!   its minimum spanning tree (§III-A3).
//! - [`space`] — global cells, frame partitioning, octagonal tiles split by
//!   diagonal wires, blockage tagging, and via-site insertion (§III-C).
//! - [`astar`] — A\*-search over the multi-layer tile graph (§III-D).
//! - [`realize`] — turning a tile path into X-architecture wire segments
//!   that honor the 90°/135° turn rule.

pub mod astar;
pub mod bucket;
pub mod cancel;
pub mod cell_graph;
pub mod congestion;
pub mod landmarks;
pub mod mcmf;
pub mod partition;
pub mod realize;
pub mod space;

pub use astar::{AstarResult, PathStep, SearchOptions, SearchStats};
pub use bucket::BucketQueue;
pub use cancel::CancelToken;
pub use cell_graph::{CellGraph, MstEdge};
pub use congestion::CongestionMap;
pub use landmarks::Landmarks;
pub use partition::{line_extension_partition, merge_cells};
pub use space::{RoutingSpace, SpaceConfig, TileId, TileNode};
