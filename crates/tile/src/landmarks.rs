//! ALT landmark lower bounds over the stage-start tile graph (§III-D
//! acceleration; see DESIGN.md §4f).
//!
//! ## The optimistic stage-start graph
//!
//! Landmark distances are exact only for a fixed graph, but the tile
//! graph is rebuilt after every committed net. Instead of patching
//! tables per commit, the tables are computed **once per sequential
//! stage** over a graph `G₀` whose distances lower-bound the true
//! routing cost in *every* state the stage can reach:
//!
//! - **Nodes** are the stage-start tiles minus hard-blocked ones
//!   (net-tagged tiles are kept: they are passable for their owner, and
//!   keeping them only lowers distances for everyone else).
//! - **Planar edges** join same-layer tiles whose shapes share at least
//!   a point, with weight `max(0, oct(c_a, c_b) − r_a − r_b)` where `c`
//!   is an interior point and `r` the tile's octilinear radius. For any
//!   points `p ∈ a, q ∈ b` the triangle inequality gives
//!   `oct(p, q) ≥ oct(c_a, c_b) − r_a − r_b`, so any real hop costs at
//!   least the edge weight.
//! - **Via edges** join overlapping tiles on adjacent layers at weight
//!   `via_cost` (the travel to the via site is deflated to zero).
//!
//! Admissibility: the sequential stage only *adds* blockage relative to
//! its start state (rip-up evicts only nets the stage itself committed,
//! so restores never go below stage start). Any future legal route is a
//! curve in stage-start free space; tracing the stage-start tiles it
//! passes through yields a `G₀` walk whose weight, by the hop bound
//! above, does not exceed the route's cost. Hence
//! `d₀(T(p), T(q)) ≤ cost(p → q)` for the stage-start tiles `T(·)`
//! containing the endpoints, in every reachable state. The classic ALT
//! bound `max_L |d₀(L, T(p)) − d₀(L, T(dst))|` then lower-bounds
//! `d₀(T(p), T(dst))`, and consistency follows from the same argument
//! applied to each search edge (every A\* move's geometric segment stays
//! inside a convex stage-start-free octagon). `tests/` pins both
//! properties against exact Dijkstra distances.
//!
//! Each per-edge weight is additionally deflated by `EDGE_SLACK` so
//! accumulated floating-point rounding can never push a table distance
//! above the true infimum.

use crate::space::RoutingSpace;
use info_geom::{x_arch_len, GridIndex, Octagon, Point, Rect};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-edge deflation absorbing float rounding in summed path weights
/// (nanometers; a thousand-edge path gives up one millionth of a nm of
/// tightening in exchange for bulletproof admissibility).
const EDGE_SLACK: f64 = 1e-6;

/// Landmark distance tables over the stage-start tile graph. Built once
/// per sequential stage ([`RoutingSpace::set_landmarks`]); valid for the
/// whole stage by the blockage-monotonicity argument in the module docs,
/// so no per-commit invalidation is needed — snapshots and restores share
/// the tables through an `Arc`.
#[derive(Debug, Clone)]
pub struct Landmarks {
    /// Per wire layer: spatial index over node bboxes (payload = node).
    locate: Vec<GridIndex<u32>>,
    /// Node shapes, for exact point-membership tests.
    shapes: Vec<Octagon>,
    /// `dist[l * nodes + node]`: Dijkstra distance from landmark `l`.
    dist: Vec<f64>,
    /// Landmark count actually selected (≤ requested on tiny graphs).
    k: usize,
}

/// One adjacency list entry of the optimistic graph.
#[derive(Clone, Copy)]
struct Arc0 {
    to: u32,
    w: f64,
}

impl Landmarks {
    /// Builds tables with (up to) `k` landmarks over the space's current
    /// tiles. Deterministic: node order is tile-slot order, landmark
    /// selection is farthest-point sampling seeded at the node with the
    /// lexicographically smallest `(center, layer)`.
    pub fn build(space: &RoutingSpace, k: usize) -> Self {
        Self::build_threaded(space, k, 1)
    }

    /// [`Landmarks::build`] with the per-landmark Dijkstra loop spread
    /// over up to `threads` OS threads. Each landmark's table is an
    /// independent single-source problem writing a disjoint slice of
    /// `dist`, so the tables are bit-identical at every thread count —
    /// which is also why a warm-space cache key never needs to include
    /// the thread count.
    pub fn build_threaded(space: &RoutingSpace, k: usize, threads: usize) -> Self {
        let layers = space.layer_count();

        // --- Collect nodes (stage-start tiles that someone can pass).
        let mut shapes: Vec<Octagon> = Vec::new();
        let mut centers: Vec<Point> = Vec::new();
        let mut radii: Vec<f64> = Vec::new();
        let mut node_layer: Vec<u32> = Vec::new();
        let mut bounds: Option<Rect> = None;
        for (_, t) in space.live_tiles() {
            let hard = t
                .blockers
                .iter()
                .any(|b| matches!(b, crate::space::Blocker::Hard));
            if hard {
                continue;
            }
            let c = t.shape.interior_point();
            let r = t
                .shape
                .vertices()
                .iter()
                .map(|&v| x_arch_len(c, v))
                .fold(0.0f64, f64::max);
            let bb = t.shape.bbox();
            bounds = Some(match bounds {
                None => bb,
                Some(acc) => acc.union(bb),
            });
            shapes.push(t.shape);
            centers.push(c);
            radii.push(r);
            node_layer.push(t.layer.index() as u32);
        }
        let n = shapes.len();
        let bounds = bounds.unwrap_or_else(|| Rect::new(Point::new(0, 0), Point::new(1, 1)));

        // --- Per-layer locate indexes (also the adjacency query source).
        let mut locate: Vec<GridIndex<u32>> = (0..layers)
            .map(|_| GridIndex::with_capacity_hint(bounds, n / layers.max(1) + 1))
            .collect();
        for i in 0..n {
            locate[node_layer[i] as usize].insert(shapes[i].bbox(), i as u32);
        }

        if n == 0 || k == 0 {
            return Landmarks { locate, shapes, dist: Vec::new(), k: 0 };
        }

        // --- Optimistic adjacency (CSR). Planar: same-layer touching
        // shapes, deflated octilinear weight. Via: overlapping shapes on
        // adjacent layers at `via_cost`.
        let via_cost = space.config().via_cost;
        let mut adj: Vec<Vec<Arc0>> = vec![Vec::new(); n];
        for i in 0..n {
            let layer = node_layer[i] as usize;
            let my_bb = shapes[i].bbox();
            // Same layer: query returns candidates in insertion (= node)
            // order; keep j > i and add both directions once.
            let idx = &locate[layer];
            for e in idx.query_ref(my_bb) {
                let (_, &j) = idx.get(e).expect("live locate entry");
                let j = j as usize;
                if j <= i || !shapes[i].intersects(&shapes[j]) {
                    continue;
                }
                let raw = x_arch_len(centers[i], centers[j]) - radii[i] - radii[j];
                let w = (raw - EDGE_SLACK).max(0.0);
                adj[i].push(Arc0 { to: j as u32, w });
                adj[j].push(Arc0 { to: i as u32, w });
            }
            // Adjacent layer above only (below is covered symmetrically).
            if layer + 1 < layers {
                let idx = &locate[layer + 1];
                for e in idx.query_ref(my_bb) {
                    let (_, &j) = idx.get(e).expect("live locate entry");
                    let j = j as usize;
                    if !shapes[i].intersects(&shapes[j]) {
                        continue;
                    }
                    let w = (via_cost - EDGE_SLACK).max(0.0);
                    adj[i].push(Arc0 { to: j as u32, w });
                    adj[j].push(Arc0 { to: i as u32, w });
                }
            }
        }

        // --- Farthest-point landmark selection over (center, layer-hop)
        // octilinear distance. Seed: lexicographically smallest center.
        let metric = |a: usize, b: usize| {
            x_arch_len(centers[a], centers[b])
                + (node_layer[a].abs_diff(node_layer[b]) as f64) * via_cost
        };
        let seed = (0..n)
            .min_by_key(|&i| (centers[i].x, centers[i].y, node_layer[i]))
            .expect("n > 0");
        let mut landmarks = vec![seed];
        let mut min_d: Vec<f64> = (0..n).map(|i| metric(seed, i)).collect();
        while landmarks.len() < k.min(n) {
            let far = (0..n)
                .max_by(|&a, &b| min_d[a].total_cmp(&min_d[b]).then(b.cmp(&a)))
                .expect("n > 0");
            if min_d[far] <= 0.0 {
                break; // every node coincides with a landmark already
            }
            landmarks.push(far);
            for (i, d) in min_d.iter_mut().enumerate() {
                *d = d.min(metric(far, i));
            }
        }
        let k = landmarks.len();

        // --- Per-landmark Dijkstra over the optimistic graph. Each
        // landmark fills its own disjoint `dist` slice, so the slices are
        // dealt out to scoped worker threads round-robin (this crate sits
        // below the router's work-stealing pool in the dependency graph,
        // and k is small enough that static striping balances fine).
        let mut dist = vec![f64::INFINITY; k * n];
        let workers = threads.max(1).min(k.max(1));
        let mut striped: Vec<Vec<(usize, &mut [f64])>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (l, slice) in dist.chunks_mut(n).enumerate() {
            striped[l % workers].push((l, slice));
        }
        let run_landmark = |src: usize, d: &mut [f64]| {
            let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
            d[src] = 0.0;
            heap.push(Reverse((0u64, src as u32)));
            while let Some(Reverse((fb, u))) = heap.pop() {
                let u = u as usize;
                if f64::from_bits(fb) > d[u] {
                    continue;
                }
                let du = d[u];
                for a in &adj[u] {
                    let nd = du + a.w;
                    if nd < d[a.to as usize] {
                        d[a.to as usize] = nd;
                        heap.push(Reverse((nd.to_bits(), a.to)));
                    }
                }
            }
        };
        if workers <= 1 {
            for stripe in striped {
                for (l, d) in stripe {
                    run_landmark(landmarks[l], d);
                }
            }
        } else {
            std::thread::scope(|s| {
                for stripe in striped {
                    let landmarks = &landmarks;
                    let run_landmark = &run_landmark;
                    s.spawn(move || {
                        for (l, d) in stripe {
                            run_landmark(landmarks[l], d);
                        }
                    });
                }
            });
        }

        Landmarks { locate, shapes, dist, k }
    }

    /// Number of landmarks in the tables.
    pub fn landmark_count(&self) -> usize {
        self.k
    }

    /// Number of graph nodes (stage-start passable tiles).
    pub fn node_count(&self) -> usize {
        self.shapes.len()
    }

    /// The stage-start node containing `p` on `layer`, if any
    /// (deterministic: the lowest-numbered containing node). Allocation
    /// free — the hot path calls this once per heuristic-cache miss.
    pub fn node_at(&self, layer: usize, p: Point) -> Option<u32> {
        let idx = self.locate.get(layer)?;
        let mut best: Option<u32> = None;
        idx.for_each_in(Rect::new(p, p), |_, _, &node| {
            if self.shapes[node as usize].contains(p) {
                best = Some(match best {
                    Some(b) => b.min(node),
                    None => node,
                });
            }
        });
        best
    }

    /// The ALT lower bound between two nodes:
    /// `max_L |d₀(L, a) − d₀(L, b)|`. Landmarks that cannot reach either
    /// node contribute nothing (the bound stays finite and admissible).
    #[inline]
    pub fn lower_bound(&self, a: u32, b: u32) -> f64 {
        let n = self.shapes.len();
        let (a, b) = (a as usize, b as usize);
        let mut best = 0.0f64;
        for l in 0..self.k {
            let da = self.dist[l * n + a];
            let db = self.dist[l * n + b];
            if da.is_finite() && db.is_finite() {
                let d = (da - db).abs();
                if d > best {
                    best = d;
                }
            }
        }
        best
    }
}
