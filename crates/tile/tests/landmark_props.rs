//! Property tests on the ALT landmark heuristic (`info_tile::landmarks`).
//!
//! The guarantees under test, on randomized instances:
//!
//! - **Admissibility**: the landmark lower bound between the source and
//!   destination never exceeds the cost of the path A\* actually finds —
//!   the bound is a true lower bound on the real search graph, not just
//!   on the optimistic graph it was computed from.
//! - **Consistency**: along every hop of a found path, the bound toward
//!   the destination drops by at most the hop's cost (the triangle
//!   inequality the A\* invariants need).
//! - **Losslessness**: installing the tables changes no path *cost*; a
//!   search with ALT finds the same-cost route as one without.
//! - **Usefulness**: on a detour-forcing instance (a wall between the
//!   terminals on a single wire layer) the bound strictly beats the
//!   geometric heuristic, i.e. `heuristic_tightenings > 0`.

use info_geom::{Point, Polyline, Rect};
use info_model::{DesignRules, Layout, NetId, Package, PackageBuilder, WireLayer};
use info_tile::{astar, Landmarks, RoutingSpace, SearchOptions, SpaceConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Randomized single-net instance with obstacles and committed foreign
/// wires (same family as the `astar_props` suite).
fn random_instance(seed: u64) -> (Package, Layout) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(600_000, 600_000)),
        DesignRules::default(),
        2,
    );
    let chip = b.add_chip(Rect::new(Point::new(60_000, 60_000), Point::new(240_000, 240_000)));
    for _ in 0..rng.gen_range(0..5) {
        let x = rng.gen_range(260_000..500_000);
        let y = rng.gen_range(60_000..500_000);
        let w = rng.gen_range(10_000..80_000);
        let h = rng.gen_range(10_000..80_000);
        let _ = b.add_obstacle(
            WireLayer(rng.gen_range(0..2)),
            Rect::new(Point::new(x, y), Point::new(x + w, y + h)),
        );
    }
    let io = b.add_io_pad(chip, Point::new(200_000, 200_000)).unwrap();
    let bump = b
        .add_bump_pad(Point::new(rng.gen_range(380_000..560_000), rng.gen_range(60_000..560_000)))
        .unwrap();
    b.add_net(io, bump).unwrap();
    let pkg = b.build().unwrap();
    let mut layout = Layout::new(&pkg);
    for k in 0..rng.gen_range(0..4i64) {
        let x = 280_000 + 50_000 * k;
        let (y0, y1) = (rng.gen_range(0..250_000), rng.gen_range(350_000..600_000));
        layout.add_route(
            NetId(7),
            WireLayer(rng.gen_range(0..2)),
            Polyline::new(vec![Point::new(x, y0), Point::new(x, y1)]),
        );
    }
    (pkg, layout)
}

fn cfg() -> SpaceConfig {
    SpaceConfig {
        cells_x: 6,
        cells_y: 6,
        clearance: 4_000,
        min_thickness: 4_000,
        via_width: 5_000,
        via_cost: 20_000.0,
        adjacency_cache: true,
    }
}

fn terminals(pkg: &Package) -> ((WireLayer, Point), (WireLayer, Point)) {
    let net = pkg.net(NetId(0));
    (
        (pkg.pad_layer(net.a), pkg.pad(net.a).center),
        (pkg.pad_layer(net.b), pkg.pad(net.b).center),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Admissibility and losslessness: the src→dst landmark bound never
    /// exceeds the found path's cost, and routing with the tables
    /// installed returns the same cost as routing without them.
    fn landmark_bound_is_admissible_and_lossless(seed in 0u64..1_000_000) {
        let (pkg, layout) = random_instance(seed);
        let mut space = RoutingSpace::build(&pkg, &layout, cfg());
        let (src, dst) = terminals(&pkg);
        let plain = astar::route(&space, NetId(0), src, dst);

        let lm = Landmarks::build(&space, 4);
        prop_assert!(lm.landmark_count() >= 1);
        space.set_landmarks(Some(Arc::new(lm)));
        let alt = astar::route(&space, NetId(0), src, dst);

        match (plain, alt) {
            (None, None) => {}
            (Some(p), Some(a)) => {
                prop_assert!(
                    (p.cost - a.cost).abs() <= 1e-6,
                    "ALT changed the path cost: {} vs {}",
                    p.cost,
                    a.cost
                );
                let lm = space.landmarks().unwrap();
                let (sn, dn) = (
                    lm.node_at(src.0.index(), src.1),
                    lm.node_at(dst.0.index(), dst.1),
                );
                if let (Some(sn), Some(dn)) = (sn, dn) {
                    let bound = lm.lower_bound(sn, dn);
                    prop_assert!(
                        bound <= p.cost + 1e-6,
                        "landmark bound {} exceeds true path cost {}",
                        bound,
                        p.cost
                    );
                }
            }
            (p, a) => prop_assert!(
                false,
                "ALT changed routability: plain={:?} alt={:?}",
                p.map(|r| r.cost),
                a.map(|r| r.cost)
            ),
        }
    }

    /// Consistency: along every hop of a found path, the landmark bound
    /// toward the destination decreases by at most the hop's cost (plus a
    /// float-rounding epsilon) — the triangle inequality that makes the
    /// heuristic consistent and keeps A* label-setting.
    fn landmark_bound_is_consistent_along_paths(seed in 0u64..1_000_000) {
        let (pkg, layout) = random_instance(seed);
        let mut space = RoutingSpace::build(&pkg, &layout, cfg());
        let (src, dst) = terminals(&pkg);
        let lm = Landmarks::build(&space, 4);
        space.set_landmarks(Some(Arc::new(lm)));
        let Some(r) = astar::route(&space, NetId(0), src, dst) else { return Ok(()); };
        let lm = space.landmarks().unwrap();
        let Some(dn) = lm.node_at(dst.0.index(), dst.1) else { return Ok(()); };
        let via_cost = space.config().via_cost;
        for w in r.steps.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let la = space.tile(a.tile).layer.index();
            let lb = space.tile(b.tile).layer.index();
            let (Some(na), Some(nb)) = (lm.node_at(la, a.entry), lm.node_at(lb, b.entry))
            else { continue; };
            // Cost attributed to this hop in the search graph: movement
            // to the next entry point plus the via cost when layers hop.
            let hop = info_geom::x_arch_len(a.entry, b.entry)
                + if b.via.is_some() { via_cost } else { 0.0 };
            let (ha, hb) = (lm.lower_bound(na, dn), lm.lower_bound(nb, dn));
            prop_assert!(
                ha <= hop + hb + 1e-6,
                "consistency violated: h(a)={} > hop {} + h(b)={}",
                ha,
                hop,
                hb
            );
        }
    }
}

/// Two same-layer terminals separated by a full-height wall on their
/// layer, with the layer below open: the route is forced through two
/// vias the geometric heuristic never charges for (zero layer distance
/// between the terminals). The landmark tables see the wall in the
/// optimistic graph — planar edges chain through abutting tiles at near
/// zero weight, so via crossings are exactly the structure ALT can
/// resolve — and with a via cost dominating the plate diagonal the bound
/// must strictly beat geometry (`heuristic_tightenings > 0`) while
/// leaving the path cost unchanged.
#[test]
fn forced_via_detour_tightens_heuristic() {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(600_000, 600_000)),
        DesignRules::default(),
        2,
    );
    let c1 = b.add_chip(Rect::new(Point::new(40_000, 220_000), Point::new(200_000, 380_000)));
    let c2 = b.add_chip(Rect::new(Point::new(400_000, 220_000), Point::new(560_000, 380_000)));
    // The wall splits the top layer edge to edge; only layer 1 connects
    // the two halves.
    b.add_obstacle(
        WireLayer(0),
        Rect::new(Point::new(290_000, 0), Point::new(310_000, 600_000)),
    )
    .unwrap();
    let io1 = b.add_io_pad(c1, Point::new(180_000, 300_000)).unwrap();
    let io2 = b.add_io_pad(c2, Point::new(420_000, 300_000)).unwrap();
    b.add_net(io1, io2).unwrap();
    let pkg = b.build().unwrap();
    let layout = Layout::new(&pkg);
    // A via cost above the plate diagonal: the two forced vias dwarf any
    // planar estimate, so the ALT bound must win somewhere on the way.
    let space_cfg = SpaceConfig { via_cost: 900_000.0, ..cfg() };
    let mut space = RoutingSpace::build(&pkg, &layout, space_cfg);
    let (src, dst) = terminals(&pkg);

    let mut stats = astar::SearchStats::default();
    let (plain, _) = astar::route_traced_opts(
        &space, NetId(0), src, dst, SearchOptions::default(), &mut stats,
    );
    assert_eq!(stats.heuristic_tightenings, 0, "no tables, no tightenings");

    space.set_landmarks(Some(Arc::new(Landmarks::build(&space, 4))));
    let mut alt_stats = astar::SearchStats::default();
    let (alt, _) = astar::route_traced_opts(
        &space, NetId(0), src, dst, SearchOptions::default(), &mut alt_stats,
    );

    let (plain, alt) = (plain.expect("plain route"), alt.expect("alt route"));
    assert!(
        (plain.cost - alt.cost).abs() <= 1e-6,
        "ALT changed the detour cost: {} vs {}",
        plain.cost,
        alt.cost
    );
    assert!(
        alt_stats.heuristic_tightenings > 0,
        "wall detour must make the landmark bound beat the geometric heuristic"
    );
    assert!(
        alt_stats.nodes_expanded <= stats.nodes_expanded,
        "a tighter heuristic must not expand more nodes ({} > {})",
        alt_stats.nodes_expanded,
        stats.nodes_expanded
    );
}
