//! Cross-substrate validation: the min-cost max-flow assignment must agree
//! with the LP relaxation of the same assignment problem (which is
//! integral for bipartite matching polytopes).

use info_lp::{Cmp, Model};
use info_tile::mcmf::assign_min_cost;
use rand::{Rng, SeedableRng};

/// Solves the assignment LP: maximize matched pairs first (big reward),
/// minimize cost second.
fn assignment_by_lp(costs: &[Vec<Option<i64>>]) -> (usize, i64) {
    let n_src = costs.len();
    let n_snk = costs.first().map_or(0, Vec::len);
    let mut m = Model::new();
    let big = 1_000_000.0;
    let mut vars = Vec::new();
    for row in costs {
        let mut row_vars = Vec::new();
        for c in row {
            match c {
                Some(c) => row_vars.push(Some((m.add_var(0.0, 1.0, *c as f64 - big), *c))),
                None => row_vars.push(None),
            }
        }
        vars.push(row_vars);
    }
    for row_vars in vars.iter().take(n_src) {
        let terms: Vec<_> = row_vars.iter().flatten().map(|&(v, _)| (v, 1.0)).collect();
        if !terms.is_empty() {
            m.add_row(terms, Cmp::Le, 1.0);
        }
    }
    for j in 0..n_snk {
        let terms: Vec<_> = vars
            .iter()
            .take(n_src)
            .filter_map(|row_vars| row_vars[j].map(|(v, _)| (v, 1.0)))
            .collect();
        if !terms.is_empty() {
            m.add_row(terms, Cmp::Le, 1.0);
        }
    }
    let sol = m.solve().expect("assignment LP is feasible");
    let mut matched = 0usize;
    let mut cost = 0i64;
    for row in &vars {
        for entry in row.iter().flatten() {
            if sol[entry.0] > 0.5 {
                matched += 1;
                cost += entry.1;
            }
        }
    }
    (matched, cost)
}

#[test]
fn mcmf_matches_lp_on_random_assignments() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for trial in 0..30 {
        let n_src = rng.gen_range(1..6);
        let n_snk = rng.gen_range(1..6);
        let costs: Vec<Vec<Option<i64>>> = (0..n_src)
            .map(|_| {
                (0..n_snk)
                    .map(|_| rng.gen_bool(0.8).then(|| rng.gen_range(1..50)))
                    .collect()
            })
            .collect();
        let flow_asg = assign_min_cost(&costs);
        let flow_matched = flow_asg.iter().flatten().count();
        let flow_cost: i64 = flow_asg
            .iter()
            .enumerate()
            .filter_map(|(i, j)| j.map(|j| costs[i][j].expect("assigned pair is allowed")))
            .sum();
        let (lp_matched, lp_cost) = assignment_by_lp(&costs);
        assert_eq!(flow_matched, lp_matched, "trial {trial}: cardinality differs");
        assert_eq!(flow_cost, lp_cost, "trial {trial}: cost differs ({costs:?})");
        // No sink double-booked.
        let mut seen = std::collections::BTreeSet::new();
        for j in flow_asg.iter().flatten() {
            assert!(seen.insert(*j), "trial {trial}: sink {j} used twice");
        }
    }
}
