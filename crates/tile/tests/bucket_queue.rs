//! Equivalence of the bucketed open list against the reference
//! `BinaryHeap<Reverse<(u64, u32)>>` it replaced: on arbitrary interleaved
//! push/pop sequences — including exact key ties — both structures must
//! produce the same pop sequence, and `clear` must make the queue safe to
//! reuse across consecutive searches (the per-net reuse pattern of the A\*
//! scratch state).

use info_tile::BucketQueue;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pop sequence: `(f_bits, id)` in the order the queue yielded them.
type Pops = Vec<(u64, u32)>;

/// Drives both queues through the same random schedule and returns their
/// pop sequences. Keys are f64 cost bits (`to_bits` of non-negative
/// finite costs, the only keys A\* produces); `tie_pool` shrinks the key
/// space so exact ties are common.
fn run_schedule(
    seed: u64,
    ops: usize,
    delta: f64,
    tie_pool: u64,
) -> (Pops, Pops) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut bucket = BucketQueue::new(delta);
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut got = Vec::new();
    let mut want = Vec::new();
    for _ in 0..ops {
        if heap.is_empty() || rng.gen_bool(0.6) {
            // Costs drawn from a small pool of magnitudes so ties happen;
            // ids drawn small so equal (cost, id) pairs also happen.
            let cost = (rng.gen_range(0..tie_pool) as f64) * 1_000.5;
            let id = rng.gen_range(0..64u32);
            bucket.push(cost.to_bits(), id);
            heap.push(Reverse((cost.to_bits(), id)));
        } else {
            got.push(bucket.pop().expect("bucket queue must mirror heap length"));
            want.push(heap.pop().expect("non-empty by branch guard").0);
        }
    }
    while let Some(Reverse(k)) = heap.pop() {
        want.push(k);
        got.push(bucket.pop().expect("bucket queue must mirror heap length"));
    }
    assert!(bucket.is_empty(), "bucket queue must drain with the heap");
    (got, want)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaved pushes and pops pop in exactly the reference heap's
    /// order, ties (equal cost bits) broken identically by tile id.
    fn pops_match_reference_heap(
        seed in 0u64..1_000_000,
        ops in 10usize..400,
        delta_exp in 0u32..12,
        tie_pool in 1u64..40,
    ) {
        let delta = (1u64 << delta_exp) as f64;
        let (got, want) = run_schedule(seed, ops, delta, tie_pool);
        prop_assert_eq!(got, want);
    }

    /// `clear` between schedules reproduces a fresh queue: the reuse
    /// pattern of consecutive nets sharing one scratch allocation.
    fn reuse_after_clear_matches_fresh_queue(
        seed in 0u64..1_000_000,
        rounds in 2usize..5,
        ops in 10usize..120,
    ) {
        let mut reused = BucketQueue::new(64.0);
        for round in 0..rounds as u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ round);
            // Vary the bucket width across rounds, as per-net deltas do.
            let delta = 64.0 * (1 + (round % 3)) as f64;
            reused.clear(Some(delta));
            let mut fresh = BucketQueue::new(delta);
            let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
            for _ in 0..ops {
                if heap.is_empty() || rng.gen_bool(0.5) {
                    let cost = (rng.gen_range(0..32u64) as f64) * 777.25;
                    let id = rng.gen_range(0..1_000u32);
                    reused.push(cost.to_bits(), id);
                    fresh.push(cost.to_bits(), id);
                    heap.push(Reverse((cost.to_bits(), id)));
                } else {
                    let want = heap.pop().expect("non-empty by branch guard").0;
                    prop_assert_eq!(reused.pop(), Some(want));
                    prop_assert_eq!(fresh.pop(), Some(want));
                }
            }
            while let Some(Reverse(k)) = heap.pop() {
                prop_assert_eq!(reused.pop(), Some(k));
                prop_assert_eq!(fresh.pop(), Some(k));
            }
            prop_assert!(reused.is_empty());
        }
    }

    /// The population peak is the true high-water mark across the whole
    /// schedule and survives `clear` (it feeds cross-net statistics).
    fn peak_is_true_high_water_mark(
        seed in 0u64..1_000_000,
        ops in 10usize..200,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut q = BucketQueue::new(128.0);
        let mut live = 0usize;
        let mut high = 0usize;
        for _ in 0..ops {
            if live == 0 || rng.gen_bool(0.6) {
                q.push((rng.gen_range(0..1_000u64) as f64).to_bits(), rng.gen_range(0..64u32));
                live += 1;
                high = high.max(live);
            } else {
                q.pop().expect("live > 0");
                live -= 1;
            }
        }
        prop_assert_eq!(q.peak(), high);
        q.clear(None);
        prop_assert_eq!(q.peak(), high, "clear must retain the peak");
        q.reset_peak();
        prop_assert_eq!(q.peak(), q.len());
    }
}
