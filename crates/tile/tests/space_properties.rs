//! Property tests on the routing space: tiles partition the free space,
//! blockage tagging is sound, and adjacency is symmetric.

use info_geom::{Point, Polyline, Rect};
use info_model::{DesignRules, Layout, NetId, Package, PackageBuilder, WireLayer};
use info_tile::{RoutingSpace, SpaceConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn random_package(seed: u64) -> (Package, Layout) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(600_000, 600_000)),
        DesignRules::default(),
        2,
    );
    let chip = b.add_chip(Rect::new(Point::new(60_000, 60_000), Point::new(240_000, 240_000)));
    let n_obs = rng.gen_range(0..4);
    for _ in 0..n_obs {
        let x = rng.gen_range(260_000..500_000);
        let y = rng.gen_range(260_000..500_000);
        let w = rng.gen_range(10_000..60_000);
        let h = rng.gen_range(10_000..60_000);
        let _ = b.add_obstacle(
            WireLayer(rng.gen_range(0..2)),
            Rect::new(Point::new(x, y), Point::new(x + w, y + h)),
        );
    }
    let io = b.add_io_pad(chip, Point::new(200_000, 200_000)).unwrap();
    let bump = b.add_bump_pad(Point::new(450_000, 150_000)).unwrap();
    b.add_net(io, bump).unwrap();
    let pkg = b.build().unwrap();
    let mut layout = Layout::new(&pkg);
    // A couple of committed foreign wires.
    for k in 0..rng.gen_range(0..3) {
        let y = 300_000 + 60_000 * k;
        layout.add_route(
            NetId(0),
            WireLayer(0),
            Polyline::new(vec![Point::new(280_000, y), Point::new(520_000, y)]),
        );
    }
    (pkg, layout)
}

fn cfg() -> SpaceConfig {
    SpaceConfig {
        cells_x: 5,
        cells_y: 5,
        clearance: 4_000,
        min_thickness: 4_000,
        via_width: 5_000,
        via_cost: 20_000.0,
        adjacency_cache: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tiles within a cell never overlap in their interiors.
    #[test]
    fn tiles_have_disjoint_interiors(seed in 0u64..500) {
        let (pkg, layout) = random_package(seed);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        for layer in [WireLayer(0), WireLayer(1)] {
            for cy in 0..5 {
                for cx in 0..5 {
                    let ids = space.tiles_in_cell(layer, cx, cy);
                    for (i, &a) in ids.iter().enumerate() {
                        for &b in &ids[i + 1..] {
                            let ta = &space.tile(a).shape;
                            let tb = &space.tile(b).shape;
                            let ix = ta.intersection(tb);
                            if !ix.is_empty() {
                                prop_assert_eq!(
                                    ix.area(), 0,
                                    "tiles {:?} and {:?} overlap: {} vs {}", a, b, ta, tb
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Sampled points near foreign wires are blocked for other nets;
    /// sampled far-away free points are reachable.
    #[test]
    fn wire_bands_block_foreign_nets(seed in 0u64..500) {
        let (pkg, layout) = random_package(seed);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        for r in layout.routes() {
            for seg in r.path.segments() {
                let m = seg.midpoint();
                // 2 µm above the wire centerline: inside the 4 µm band.
                let near = Point::new(m.x, m.y + 2_000);
                if seg.distance_to_point(near) < 3_000.0 {
                    prop_assert!(
                        space.tile_at(r.layer, near, NetId(42)).is_none(),
                        "point {} within the band of {:?} must be blocked",
                        near, r.id
                    );
                }
            }
        }
    }

    /// Planar adjacency is symmetric for a free-roaming net.
    #[test]
    fn adjacency_is_symmetric(seed in 0u64..200) {
        let (pkg, layout) = random_package(seed);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        let probe_net = NetId(7); // foreign to everything committed
        let mut checked = 0;
        for (id, t) in space.live_tiles() {
            if !t.is_free() || checked > 300 {
                continue;
            }
            for e in space.planar_neighbors(id, probe_net) {
                let back = space.planar_neighbors(e.to, probe_net);
                prop_assert!(
                    back.iter().any(|b| b.to == id),
                    "edge {:?} -> {:?} has no reverse", id, e.to
                );
                checked += 1;
            }
        }
    }

    /// Every via site sits in free space on both of its layers.
    #[test]
    fn via_sites_are_usable(seed in 0u64..500) {
        let (pkg, layout) = random_package(seed);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        for cy in 0..5 {
            for cx in 0..5 {
                for site in space.via_sites(cx, cy) {
                    for layer in [site.upper, site.lower] {
                        prop_assert!(
                            space.tile_at(layer, site.at, NetId(99)).is_some(),
                            "via site {:?} unusable on {layer}", site.at
                        );
                    }
                }
            }
        }
    }
}
