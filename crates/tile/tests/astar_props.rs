//! Property tests on the A\* search layer: on randomized tile graphs,
//! every returned path is a genuine walk of the graph (endpoint-anchored,
//! every hop an existing planar or via adjacency), its cost is exactly
//! the sum of its edge costs, its realization obeys the 90°/135° turn
//! rule, the windowed search agrees with the forced full-graph search,
//! and unroutable instances return `None` instead of panicking.

use info_geom::{x_arch_len, Point, Polyline, Rect};
use info_model::{DesignRules, Layout, NetId, Package, PackageBuilder, WireLayer};
use info_tile::{astar, realize, RoutingSpace, SearchOptions, SpaceConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A randomized routing instance: one net between an I/O pad and a bump
/// pad, with random obstacles and random committed foreign wires between
/// them.
fn random_instance(seed: u64) -> (Package, Layout) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(600_000, 600_000)),
        DesignRules::default(),
        2,
    );
    let chip = b.add_chip(Rect::new(Point::new(60_000, 60_000), Point::new(240_000, 240_000)));
    for _ in 0..rng.gen_range(0..5) {
        let x = rng.gen_range(260_000..500_000);
        let y = rng.gen_range(60_000..500_000);
        let w = rng.gen_range(10_000..80_000);
        let h = rng.gen_range(10_000..80_000);
        let _ = b.add_obstacle(
            WireLayer(rng.gen_range(0..2)),
            Rect::new(Point::new(x, y), Point::new(x + w, y + h)),
        );
    }
    let io = b.add_io_pad(chip, Point::new(200_000, 200_000)).unwrap();
    let bump = b
        .add_bump_pad(Point::new(rng.gen_range(380_000..560_000), rng.gen_range(60_000..560_000)))
        .unwrap();
    b.add_net(io, bump).unwrap();
    let pkg = b.build().unwrap();
    let mut layout = Layout::new(&pkg);
    // Committed foreign wires the search must respect.
    for k in 0..rng.gen_range(0..4i64) {
        let x = 280_000 + 50_000 * k;
        let (y0, y1) = (rng.gen_range(0..250_000), rng.gen_range(350_000..600_000));
        layout.add_route(
            NetId(7),
            WireLayer(rng.gen_range(0..2)),
            Polyline::new(vec![Point::new(x, y0), Point::new(x, y1)]),
        );
    }
    (pkg, layout)
}

fn cfg() -> SpaceConfig {
    SpaceConfig {
        cells_x: 6,
        cells_y: 6,
        clearance: 4_000,
        min_thickness: 4_000,
        via_width: 5_000,
        via_cost: 20_000.0,
        adjacency_cache: true,
    }
}

/// The net-0 terminals of an instance, as `(layer, point)` pairs.
fn terminals(pkg: &Package) -> ((WireLayer, Point), (WireLayer, Point)) {
    let net = pkg.net(NetId(0));
    (
        (pkg.pad_layer(net.a), pkg.pad(net.a).center),
        (pkg.pad_layer(net.b), pkg.pad(net.b).center),
    )
}

/// Asserts that `r` is a genuine walk of `space`'s adjacency structure
/// from `src` to `dst`, and that its cost is the sum of its edge costs.
fn assert_well_formed_path(
    space: &RoutingSpace,
    r: &astar::AstarResult,
    src: (WireLayer, Point),
    dst: (WireLayer, Point),
) {
    assert!(!r.steps.is_empty());
    let first = &r.steps[0];
    let last = r.steps.last().unwrap();
    // Endpoint anchoring: the walk starts at the source point on the
    // source layer and ends in a tile of the destination layer whose
    // shape contains the destination point.
    assert_eq!(first.entry, src.1, "first entry must be the source point");
    assert_eq!(space.tile(first.tile).layer, src.0);
    assert_eq!(space.tile(last.tile).layer, dst.0);
    assert!(
        space.tile(last.tile).shape.contains(dst.1),
        "last tile must contain the destination point"
    );
    let via_cost = space.config().via_cost;
    let mut total = 0.0;
    for w in r.steps.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        match b.via {
            // A via hop: the destination tile must be a via neighbor of
            // the source tile, reached exactly at the recorded site.
            Some((site, _, _)) => {
                assert_eq!(b.entry, site, "via step enters at the via site");
                let vn = space.via_neighbors(a.tile, NetId(0));
                assert!(
                    vn.iter().any(|&(to, s)| to == b.tile && s == site),
                    "via hop {:?} -> {:?} at {:?} is not an existing via adjacency",
                    a.tile,
                    b.tile,
                    site
                );
                total += x_arch_len(a.entry, site);
                total += via_cost;
            }
            // A planar hop: the destination tile must be a planar
            // neighbor, entered at the crossing midpoint of that edge.
            None => {
                let pn = space.planar_neighbors(a.tile, NetId(0));
                assert!(
                    pn.iter().any(|e| e.to == b.tile && e.crossing.midpoint() == b.entry),
                    "planar hop {:?} -> {:?} at {:?} is not an existing adjacency",
                    a.tile,
                    b.tile,
                    b.entry
                );
                total += x_arch_len(a.entry, b.entry);
            }
        }
    }
    total += x_arch_len(last.entry, dst.1);
    assert!(
        (total - r.cost).abs() <= 1e-6,
        "cost {} must equal the edge-cost sum {}",
        r.cost,
        total
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Found paths are genuine graph walks with exact edge-cost sums, and
    /// their realizations obey the 90°/135° turn rule.
    fn paths_are_legal_walks(seed in 0u64..1_000_000) {
        let (pkg, layout) = random_instance(seed);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        let (src, dst) = terminals(&pkg);
        // Must not panic either way; `None` is a legal outcome on a
        // blocked instance.
        let Some(r) = astar::route(&space, NetId(0), src, dst) else { return Ok(()); };
        assert_well_formed_path(&space, &r, src, dst);
        if let Some(real) = realize::realize(&r, src, dst) {
            for (_, pl) in &real.routes {
                prop_assert!(
                    pl.validate().is_ok(),
                    "realized polyline violates the turn rule: {:?}",
                    pl
                );
            }
        }
    }

    /// The windowed search and the forced full-graph search agree exactly:
    /// same routability, bit-identical cost, identical step sequence.
    fn windowed_search_is_lossless(seed in 0u64..1_000_000) {
        let (pkg, layout) = random_instance(seed);
        let space = RoutingSpace::build(&pkg, &layout, cfg());
        let (src, dst) = terminals(&pkg);
        let mut ws = astar::SearchStats::default();
        let mut fs = astar::SearchStats::default();
        let (win, _) = astar::route_traced_opts(
            &space, NetId(0), src, dst,
            SearchOptions { windowed: true, allow_vias: true, arena: true, expansion_budget: None }, &mut ws,
        );
        let (full, _) = astar::route_traced_opts(
            &space, NetId(0), src, dst,
            SearchOptions { windowed: false, allow_vias: true, arena: true, expansion_budget: None }, &mut fs,
        );
        match (win, full) {
            (None, None) => {}
            (Some(w), Some(f)) => {
                if ws.window_escalations == 0 {
                    // The fence accepted the windowed run, so it must be
                    // the full-graph search bit for bit.
                    prop_assert_eq!(w.cost.to_bits(), f.cost.to_bits());
                    prop_assert_eq!(w.steps, f.steps);
                } else {
                    // An escalated continuation resumes from the windowed
                    // run's surviving open list rather than restarting, so
                    // tie-breaks (and hence the step sequence) may differ —
                    // but A* optimality guarantees the same path cost, and
                    // the path must still be a genuine graph walk.
                    prop_assert!(
                        (w.cost - f.cost).abs() <= 1e-6,
                        "escalated cost {} != full-graph cost {}",
                        w.cost,
                        f.cost
                    );
                    assert_well_formed_path(&space, &w, src, dst);
                    // The continuation only re-explores the frontier the
                    // window cut off; it can never expand more nodes than
                    // a from-scratch full-graph search.
                    prop_assert!(
                        ws.escalation_expansions <= fs.nodes_expanded,
                        "warm continuation ({}) costlier than scratch full search ({})",
                        ws.escalation_expansions,
                        fs.nodes_expanded
                    );
                }
            }
            (w, f) => {
                prop_assert!(
                    false,
                    "routability diverged: windowed {:?} vs full {:?}",
                    w.is_some(),
                    f.is_some()
                );
            }
        }
        if ws.window_escalations == 0 {
            prop_assert_eq!(ws.escalation_expansions, 0);
        }
        prop_assert_eq!(ws.searches, 1);
        prop_assert_eq!(fs.window_escalations, 0, "full-graph runs never escalate");
        prop_assert_eq!(fs.escalation_expansions, 0, "full-graph runs never escalate");
    }

    /// Fully fenced instances return `None` — never panic — with or
    /// without the window, with or without vias.
    fn unroutable_returns_none(seed in 0u64..1_000_000, cells in 4usize..9) {
        let mut b = PackageBuilder::new(
            Rect::new(Point::new(0, 0), Point::new(600_000, 600_000)),
            DesignRules::default(),
            2,
        );
        let chip =
            b.add_chip(Rect::new(Point::new(60_000, 60_000), Point::new(240_000, 240_000)));
        let io = b.add_io_pad(chip, Point::new(150_000, 150_000)).unwrap();
        let bump = b.add_bump_pad(Point::new(450_000, 450_000)).unwrap();
        b.add_net(io, bump).unwrap();
        // A fence ring around the chip on *both* layers: no escape exists.
        let (lo, hi, t) = (40_000i64, 280_000i64, 10_000i64);
        for layer in [WireLayer(0), WireLayer(1)] {
            for fence in [
                Rect::new(Point::new(lo, lo), Point::new(hi, lo + t)),
                Rect::new(Point::new(lo, hi - t), Point::new(hi, hi)),
                Rect::new(Point::new(lo, lo), Point::new(lo + t, hi)),
                Rect::new(Point::new(hi - t, lo), Point::new(hi, hi)),
            ] {
                b.add_obstacle(layer, fence).unwrap();
            }
        }
        let pkg = b.build().unwrap();
        let layout = Layout::new(&pkg);
        let mut c = cfg();
        c.cells_x = cells;
        c.cells_y = cells;
        let space = RoutingSpace::build(&pkg, &layout, c);
        let (src, dst) = terminals(&pkg);
        for windowed in [true, false] {
            let mut stats = astar::SearchStats::default();
            let (got, _) = astar::route_traced_opts(
                &space, NetId(0), src, dst,
                SearchOptions { windowed, allow_vias: true, arena: true, expansion_budget: None }, &mut stats,
            );
            prop_assert!(got.is_none(), "fenced net must be unroutable (seed {})", seed);
        }
        // The no-via same-layer search must complete without panicking;
        // whether it routes depends on the obstacle draw, so only the
        // absence of a panic is asserted.
        let _ = astar::route_with(&space, NetId(0), src, (src.0, dst.1), false);
    }
}

/// A pad pair close together but separated by a wall (on both layers)
/// that outspans the search window: the only path detours around the
/// wall ends, outside the window, so the windowed run must escalate.
fn escalation_instance() -> (Package, Layout) {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(600_000, 600_000)),
        DesignRules::default(),
        2,
    );
    let chip = b.add_chip(Rect::new(Point::new(60_000, 200_000), Point::new(180_000, 400_000)));
    let io = b.add_io_pad(chip, Point::new(150_000, 300_000)).unwrap();
    let bump = b.add_bump_pad(Point::new(280_000, 300_000)).unwrap();
    b.add_net(io, bump).unwrap();
    // The wall: x = 220k..230k, y = 60k..540k, both layers. The pad-pair
    // window (6×6 cells, margin ≈ 112k) covers cells y1..y4 — the wall
    // ends at y < 60k / y > 540k are in cells y0/y5, outside it.
    for layer in [WireLayer(0), WireLayer(1)] {
        b.add_obstacle(
            layer,
            Rect::new(Point::new(220_000, 60_000), Point::new(230_000, 540_000)),
        )
        .unwrap();
    }
    let pkg = b.build().unwrap();
    let layout = Layout::new(&pkg);
    (pkg, layout)
}

/// A forced escalation resumes warm: it returns the full-graph-optimal
/// cost while expanding strictly fewer continuation nodes than a
/// from-scratch full-graph search would.
#[test]
fn forced_escalation_is_cost_identical_and_cheaper() {
    let (pkg, layout) = escalation_instance();
    let space = RoutingSpace::build(&pkg, &layout, cfg());
    let (src, dst) = terminals(&pkg);
    let mut ws = astar::SearchStats::default();
    let mut fs = astar::SearchStats::default();
    let (win, _) = astar::route_traced_opts(
        &space,
        NetId(0),
        src,
        dst,
        SearchOptions { windowed: true, allow_vias: true, arena: true, expansion_budget: None },
        &mut ws,
    );
    let (full, _) = astar::route_traced_opts(
        &space,
        NetId(0),
        src,
        dst,
        SearchOptions { windowed: false, allow_vias: true, arena: true, expansion_budget: None },
        &mut fs,
    );
    let win = win.expect("detour route exists around the wall ends");
    let full = full.expect("full-graph route");
    assert_eq!(ws.window_escalations, 1, "the wall must force an escalation");
    assert!(
        (win.cost - full.cost).abs() <= 1e-6,
        "escalated cost {} != full-graph cost {}",
        win.cost,
        full.cost
    );
    assert_well_formed_path(&space, &win, src, dst);
    assert!(ws.escalation_expansions > 0, "continuation did real work");
    assert!(
        ws.escalation_expansions < fs.nodes_expanded,
        "warm continuation ({}) must be cheaper than a scratch full search ({})",
        ws.escalation_expansions,
        fs.nodes_expanded
    );
    // The total windowed+continuation work also stays bounded by the
    // windowed attempt plus one full search (the old restart cost).
    assert!(ws.nodes_expanded < 2 * fs.nodes_expanded);
}

/// Escalated searches are deterministic: byte-identical stats and paths
/// across repeated runs (the scratch state fully resets between nets).
#[test]
fn forced_escalation_is_deterministic() {
    let (pkg, layout) = escalation_instance();
    let space = RoutingSpace::build(&pkg, &layout, cfg());
    let (src, dst) = terminals(&pkg);
    let run_once = || {
        let mut st = astar::SearchStats::default();
        let (r, cells) = astar::route_traced_opts(
            &space,
            NetId(0),
            src,
            dst,
            SearchOptions { windowed: true, allow_vias: true, arena: true, expansion_budget: None },
            &mut st,
        );
        (r.expect("route").steps, st, cells)
    };
    let (steps1, st1, cells1) = run_once();
    let (steps2, st2, cells2) = run_once();
    assert_eq!(steps1, steps2);
    assert_eq!(st1, st2);
    assert_eq!(cells1, cells2);
}
