//! Routing telemetry: spans, counters, histograms, and the per-net route
//! journal (see DESIGN.md §4e).
//!
//! The whole subsystem hangs off a [`Sink`], which is either *enabled*
//! (an `Arc` to shared atomic/mutexed state) or *disabled* (`None`).
//! Every recording method early-returns on a disabled sink, so a router
//! built with telemetry off pays one branch per call site and allocates
//! nothing — layouts are byte-identical either way because no recorded
//! value ever feeds back into routing decisions.
//!
//! Determinism contract: the **journal** is emitted only at authoritative
//! commit points of the sequential flow (plans are committed in net
//! order), so its contents are identical at every thread count.
//! **Counters** and **histograms** absorb discarded speculative work too,
//! so their totals may vary with `threads` — but they are monotonic:
//! nothing ever decrements them, not even a rip-up snapshot restore.
//! **Spans** are wall-clock measurements and inherently run-variant.
//!
//! This crate deliberately has zero dependencies (net ids are plain
//! `u32`, cells plain tuples) so every workspace crate can depend on it
//! without cycles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which routing pass produced a journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Stage 2: pattern routing along the assigned MST path.
    Concurrent,
    /// Sequential pass 1 (shortest-first order).
    First,
    /// Sequential pass 2 (retry after every other net placed).
    Retry,
    /// Sequential pass 3 (rip-up-and-reroute; one record per eviction-set
    /// trial).
    RipUp,
    /// Negotiated-congestion iteration (one record per authoritative
    /// attempt in any iteration of the convergence loop).
    Negotiated,
}

impl Pass {
    /// Stable lowercase label (used in BENCH_rdl.json and reports).
    pub fn label(self) -> &'static str {
        match self {
            Pass::Concurrent => "concurrent",
            Pass::First => "first",
            Pass::Retry => "retry",
            Pass::RipUp => "ripup",
            Pass::Negotiated => "negotiated",
        }
    }
}

/// Why a route attempt failed. The first four are the search-level
/// taxonomy of the A\* layer; the last three are post-search rejections
/// of a found path (the geometry could not be committed as searched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// The full graph was exhausted without leaving the search window
    /// (the windowed run was authoritative), or a terminal tile was
    /// blocked outright: provably no path existed.
    Unreachable,
    /// The windowed run could not certify its result, and the escalated
    /// full-graph continuation also exhausted: the window failed to
    /// contain the net, and the full graph still had no path.
    WindowFenced,
    /// The expansion budget tripped; `tile` is the last tile popped —
    /// where the search was grinding when it gave up.
    Congested {
        /// Raw tile id of the last pop before the budget tripped.
        tile: u32,
    },
    /// A cross-layer search never saw a single usable via site;
    /// `cell` is the global cell of the source tile.
    ViaCapacity {
        /// Global cell `(cx, cy)` of the stranded terminal.
        cell: (u32, u32),
    },
    /// The tile path could not be realized as legal X-architecture
    /// geometry (turn-rule validation included).
    RealizeRejected,
    /// The realized geometry crossed a committed foreign route.
    CrossingRejected,
    /// The realized geometry failed the clearance trial against the
    /// committed layout.
    ClearanceRejected,
    /// The attempt's cancel token tripped mid-search (deadline, explicit
    /// cancel, or deterministic check trip): says nothing about the
    /// net's routability, only that the budget ran out on it.
    Cancelled,
}

impl FailureReason {
    /// Stable snake_case label (used in BENCH_rdl.json and reports).
    pub fn label(self) -> &'static str {
        match self {
            FailureReason::Unreachable => "unreachable",
            FailureReason::WindowFenced => "window_fenced",
            FailureReason::Congested { .. } => "congested",
            FailureReason::ViaCapacity { .. } => "via_capacity",
            FailureReason::RealizeRejected => "realize_rejected",
            FailureReason::CrossingRejected => "crossing_rejected",
            FailureReason::ClearanceRejected => "clearance_rejected",
            FailureReason::Cancelled => "cancelled",
        }
    }

    /// Every label, in taxonomy order (for zero-filled count tables).
    pub const LABELS: [&'static str; 8] = [
        "unreachable",
        "window_fenced",
        "congested",
        "via_capacity",
        "realize_rejected",
        "crossing_rejected",
        "clearance_rejected",
        "cancelled",
    ];
}

/// How one attempt ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttemptOutcome {
    /// Committed; `f`/`g` are the accepted destination pop's queue key
    /// and path cost (for the concurrent stage, both are the committed
    /// pattern wirelength — there is no search).
    Routed {
        /// Queue key (`g + h`) at the accepting destination pop.
        f: f64,
        /// Path cost at the accepting destination pop.
        g: f64,
    },
    /// Not committed, with the taxonomy reason.
    Failed(FailureReason),
}

/// One journal record: one attempt of one net in one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// Raw net id.
    pub net: u32,
    /// The pass that made the attempt.
    pub pass: Pass,
    /// Whether the A\* search ran windowed.
    pub windowed: bool,
    /// Whether the windowed search escalated to the full graph.
    pub escalated: bool,
    /// Nodes the authoritative search expanded.
    pub expansions: u64,
    /// The outcome.
    pub outcome: AttemptOutcome,
    /// Rip-up victims evicted for this attempt (empty outside pass 3).
    pub victims: Vec<u32>,
}

/// Monotonic counters. Append new variants at the end — `ALL` and
/// `label` must stay in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// A\* entry points taken (includes discarded speculative plans).
    Searches,
    /// Nodes expanded across all searches.
    NodesExpanded,
    /// Windowed searches that escalated to the full graph.
    WindowEscalations,
    /// Nodes expanded by escalated continuations specifically.
    EscalationExpansions,
    /// Rip-up eviction-set trials.
    RipupAttempts,
    /// Eviction sets that stuck (target and all victims re-routed).
    RipupCommits,
    /// Layout/space snapshot restores after a failed eviction set.
    SnapshotRestores,
    /// Global cells rebuilt by net commits.
    CellsRebuilt,
    /// DRC per-layer sweeps that used the grid-bucket index.
    DrcSweepsIndexed,
    /// DRC per-layer sweeps that used the naive all-pairs scan.
    DrcSweepsNaive,
    /// Nets committed by the concurrent stage.
    ConcurrentCommitted,
    /// Candidates the concurrent stage skipped to sequential.
    ConcurrentSkipped,
    /// LP optimization passes run.
    LpPasses,
    /// LP crossing-repair iterations across all passes.
    LpIterations,
    /// ALT landmark table (re)builds (one per sequential stage when
    /// landmarks are enabled).
    LandmarkRebuilds,
    /// Adjacency/edge-legality cache hits (epoch-stamped verdict reused).
    LegalityCacheHits,
    /// Adjacency/edge-legality cache misses (geometry work re-done).
    LegalityCacheMisses,
    /// Nodes where the ALT landmark bound beat the geometric heuristic.
    HeuristicTightenings,
    /// Wall-clock microseconds spent inside pass-3 rip-up-and-reroute
    /// trials (snapshot, eviction, re-route, and restore included).
    RipupWallUs,
    /// Sequential-stage routing spaces served from the warm shared cache
    /// (repeat jobs on the same circuit skip the build + landmark work).
    WarmSpaceHits,
    /// Sequential-stage routing spaces built cold (and, when a warm
    /// cache is attached, deposited into it).
    WarmSpaceMisses,
    /// Negotiated-congestion iterations run (first pass included).
    NegotiationIterations,
    /// Contested global cells whose history was escalated, summed over
    /// every iteration (the per-iteration overuse signal).
    NegotiationOveruse,
    /// Nets re-queued by the negotiation driver — evicted victims plus
    /// still-failed nets — summed over every iteration after the first.
    NegotiationReroutes,
    /// Speculative plans applied fresh (read-cell set disjoint from the
    /// batch's earlier commits; the parallel work paid off).
    SpeculativeCommits,
    /// Speculative plans discarded stale and recomputed sequentially
    /// (read-cell conflict, worker error, or interrupt replay).
    SpeculativeConflicts,
    /// Adaptive batch-controller growth steps (conflict rate low).
    SpeculativeBatchGrows,
    /// Adaptive batch-controller shrink steps (conflict rate high).
    SpeculativeBatchShrinks,
    /// Work-stealing pool steals (a starved worker took the back half of
    /// another worker's remaining range).
    PoolSteals,
}

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; 29] = [
        Counter::Searches,
        Counter::NodesExpanded,
        Counter::WindowEscalations,
        Counter::EscalationExpansions,
        Counter::RipupAttempts,
        Counter::RipupCommits,
        Counter::SnapshotRestores,
        Counter::CellsRebuilt,
        Counter::DrcSweepsIndexed,
        Counter::DrcSweepsNaive,
        Counter::ConcurrentCommitted,
        Counter::ConcurrentSkipped,
        Counter::LpPasses,
        Counter::LpIterations,
        Counter::LandmarkRebuilds,
        Counter::LegalityCacheHits,
        Counter::LegalityCacheMisses,
        Counter::HeuristicTightenings,
        Counter::RipupWallUs,
        Counter::WarmSpaceHits,
        Counter::WarmSpaceMisses,
        Counter::NegotiationIterations,
        Counter::NegotiationOveruse,
        Counter::NegotiationReroutes,
        Counter::SpeculativeCommits,
        Counter::SpeculativeConflicts,
        Counter::SpeculativeBatchGrows,
        Counter::SpeculativeBatchShrinks,
        Counter::PoolSteals,
    ];

    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            Counter::Searches => "searches",
            Counter::NodesExpanded => "nodes_expanded",
            Counter::WindowEscalations => "window_escalations",
            Counter::EscalationExpansions => "escalation_expansions",
            Counter::RipupAttempts => "ripup_attempts",
            Counter::RipupCommits => "ripup_commits",
            Counter::SnapshotRestores => "snapshot_restores",
            Counter::CellsRebuilt => "cells_rebuilt",
            Counter::DrcSweepsIndexed => "drc_sweeps_indexed",
            Counter::DrcSweepsNaive => "drc_sweeps_naive",
            Counter::ConcurrentCommitted => "concurrent_committed",
            Counter::ConcurrentSkipped => "concurrent_skipped",
            Counter::LpPasses => "lp_passes",
            Counter::LpIterations => "lp_iterations",
            Counter::LandmarkRebuilds => "landmark_rebuilds",
            Counter::LegalityCacheHits => "legality_cache_hits",
            Counter::LegalityCacheMisses => "legality_cache_misses",
            Counter::HeuristicTightenings => "heuristic_tightenings",
            Counter::RipupWallUs => "ripup_wall_us",
            Counter::WarmSpaceHits => "warm_space_hits",
            Counter::WarmSpaceMisses => "warm_space_misses",
            Counter::NegotiationIterations => "negotiation_iterations",
            Counter::NegotiationOveruse => "negotiation_overuse",
            Counter::NegotiationReroutes => "negotiation_reroutes",
            Counter::SpeculativeCommits => "speculative_commits",
            Counter::SpeculativeConflicts => "speculative_conflicts",
            Counter::SpeculativeBatchGrows => "speculative_batch_grows",
            Counter::SpeculativeBatchShrinks => "speculative_batch_shrinks",
            Counter::PoolSteals => "pool_steals",
        }
    }
}

/// Log₂-bucketed histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Nodes expanded per journaled attempt.
    ExpansionsPerAttempt,
    /// Items per DRC layer sweep (the quantity the index cutoff splits
    /// on).
    DrcItemsPerSweep,
    /// Victims per rip-up eviction set.
    RipupVictims,
}

impl Metric {
    /// Every metric, in declaration order.
    pub const ALL: [Metric; 3] =
        [Metric::ExpansionsPerAttempt, Metric::DrcItemsPerSweep, Metric::RipupVictims];

    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::ExpansionsPerAttempt => "expansions_per_attempt",
            Metric::DrcItemsPerSweep => "drc_items_per_sweep",
            Metric::RipupVictims => "ripup_victims",
        }
    }
}

/// Buckets: value `v` lands in bucket `bit_width(v)` — bucket 0 holds
/// zeros, bucket k (k ≥ 1) holds `[2^(k-1), 2^k)`.
const HIST_BUCKETS: usize = 65;

fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (for report rendering).
fn bucket_hi(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        (1u64 << b.min(63)) - 1
    }
}

struct Inner {
    counters: [AtomicU64; Counter::ALL.len()],
    hists: Mutex<Vec<[u64; HIST_BUCKETS]>>,
    journal: Mutex<Vec<AttemptRecord>>,
    spans: Mutex<Vec<(&'static str, f64)>>,
}

impl Inner {
    fn new() -> Self {
        Inner {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: Mutex::new(vec![[0u64; HIST_BUCKETS]; Metric::ALL.len()]),
            journal: Mutex::new(Vec::new()),
            spans: Mutex::new(Vec::new()),
        }
    }
}

/// The telemetry sink: cheap to clone, shareable across threads, and a
/// no-op in its disabled state.
#[derive(Clone, Default)]
pub struct Sink(Option<Arc<Inner>>);

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sink").field("enabled", &self.is_enabled()).finish()
    }
}

impl Sink {
    /// A recording sink.
    pub fn enabled() -> Self {
        Sink(Some(Arc::new(Inner::new())))
    }

    /// A no-op sink (the default).
    pub fn disabled() -> Self {
        Sink(None)
    }

    /// Whether this sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `by` to a counter.
    #[inline]
    pub fn count(&self, c: Counter, by: u64) {
        if let Some(inner) = &self.0 {
            inner.counters[c as usize].fetch_add(by, Ordering::Relaxed);
        }
    }

    /// Records one observation of a metric.
    #[inline]
    pub fn observe(&self, m: Metric, value: u64) {
        if let Some(inner) = &self.0 {
            if let Ok(mut hists) = inner.hists.lock() {
                hists[m as usize][bucket_of(value)] += 1;
            }
        }
    }

    /// Appends a journal record (and folds its expansions into the
    /// [`Metric::ExpansionsPerAttempt`] histogram).
    pub fn record(&self, rec: AttemptRecord) {
        if let Some(inner) = &self.0 {
            self.observe(Metric::ExpansionsPerAttempt, rec.expansions);
            if !rec.victims.is_empty() {
                self.observe(Metric::RipupVictims, rec.victims.len() as u64);
            }
            if let Ok(mut journal) = inner.journal.lock() {
                journal.push(rec);
            }
        }
    }

    /// Records a completed span directly (for stages timed externally).
    pub fn record_span(&self, name: &'static str, seconds: f64) {
        if let Some(inner) = &self.0 {
            if let Ok(mut spans) = inner.spans.lock() {
                spans.push((name, seconds));
            }
        }
    }

    /// Starts a span; the guard records its wall-clock on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard(self.0.as_ref().map(|inner| (Arc::clone(inner), name, Instant::now())))
    }

    /// Snapshots everything recorded so far. `None` on a disabled sink.
    pub fn report(&self) -> Option<TelemetryReport> {
        let inner = self.0.as_ref()?;
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.label(), inner.counters[c as usize].load(Ordering::Relaxed)))
            .collect();
        let hists = inner.hists.lock().ok()?;
        let histograms = Metric::ALL
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let buckets = hists[i]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &n)| n > 0)
                    .map(|(b, &n)| (bucket_hi(b), n))
                    .collect();
                (m.label(), buckets)
            })
            .collect();
        drop(hists);
        let journal = inner.journal.lock().ok()?.clone();
        let spans = inner.spans.lock().ok()?.clone();
        Some(TelemetryReport { counters, histograms, spans, journal })
    }
}

/// RAII span timer returned by [`Sink::span`].
pub struct SpanGuard(Option<(Arc<Inner>, &'static str, Instant)>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.0.take() {
            if let Ok(mut spans) = inner.spans.lock() {
                spans.push((name, start.elapsed().as_secs_f64()));
            }
        }
    }
}

/// A self-contained snapshot of everything a [`Sink`] recorded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// `(label, value)` for every counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(label, [(bucket_hi, count)])` per metric; empty buckets omitted.
    pub histograms: Vec<(&'static str, Vec<(u64, u64)>)>,
    /// `(name, seconds)` per recorded span, in completion order.
    pub spans: Vec<(&'static str, f64)>,
    /// The per-net route journal, in authoritative commit order.
    pub journal: Vec<AttemptRecord>,
}

/// Journal rollup for one net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSummary {
    /// Raw net id.
    pub net: u32,
    /// Journal records for this net.
    pub attempts: u32,
    /// Total nodes expanded across its attempts.
    pub expansions: u64,
    /// Attempts whose search escalated out of the window.
    pub escalations: u32,
    /// Whether the net's last attempt committed.
    pub routed: bool,
    /// The last failure reason seen (present iff any attempt failed).
    pub last_failure: Option<FailureReason>,
    /// Victims evicted across its rip-up trials (deduplicated, sorted).
    pub victims: Vec<u32>,
}

impl TelemetryReport {
    /// Value of a counter by label (0 when absent).
    pub fn counter(&self, label: &str) -> u64 {
        self.counters.iter().find(|(l, _)| *l == label).map_or(0, |&(_, v)| v)
    }

    /// Failed attempts per taxonomy label, zero-filled in taxonomy order.
    pub fn failure_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts = FailureReason::LABELS.map(|l| (l, 0u64));
        for rec in &self.journal {
            if let AttemptOutcome::Failed(r) = rec.outcome {
                if let Some(slot) = counts.iter_mut().find(|(l, _)| *l == r.label()) {
                    slot.1 += 1;
                }
            }
        }
        counts.to_vec()
    }

    /// Per-net journal rollups, sorted by net id.
    pub fn net_summaries(&self) -> Vec<NetSummary> {
        let mut by_net: std::collections::BTreeMap<u32, NetSummary> =
            std::collections::BTreeMap::new();
        for rec in &self.journal {
            let s = by_net.entry(rec.net).or_insert_with(|| NetSummary {
                net: rec.net,
                attempts: 0,
                expansions: 0,
                escalations: 0,
                routed: false,
                last_failure: None,
                victims: Vec::new(),
            });
            s.attempts += 1;
            s.expansions += rec.expansions;
            s.escalations += u32::from(rec.escalated);
            match rec.outcome {
                AttemptOutcome::Routed { .. } => s.routed = true,
                AttemptOutcome::Failed(r) => {
                    s.routed = false;
                    s.last_failure = Some(r);
                }
            }
            s.victims.extend(&rec.victims);
        }
        let mut out: Vec<NetSummary> = by_net.into_values().collect();
        for s in &mut out {
            s.victims.sort_unstable();
            s.victims.dedup();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing_and_reports_none() {
        let sink = Sink::disabled();
        sink.count(Counter::Searches, 3);
        sink.observe(Metric::DrcItemsPerSweep, 100);
        sink.record(AttemptRecord {
            net: 0,
            pass: Pass::First,
            windowed: true,
            escalated: false,
            expansions: 10,
            outcome: AttemptOutcome::Failed(FailureReason::Unreachable),
            victims: vec![],
        });
        let _g = sink.span("noop");
        assert!(!sink.is_enabled());
        assert!(sink.report().is_none());
    }

    #[test]
    fn counters_accumulate_and_label_stably() {
        let sink = Sink::enabled();
        sink.count(Counter::Searches, 2);
        sink.count(Counter::Searches, 3);
        sink.count(Counter::NodesExpanded, 7);
        let rep = sink.report().unwrap();
        assert_eq!(rep.counter("searches"), 5);
        assert_eq!(rep.counter("nodes_expanded"), 7);
        assert_eq!(rep.counter("absent"), 0);
        assert_eq!(rep.counters.len(), Counter::ALL.len());
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        let sink = Sink::enabled();
        for v in [0, 1, 2, 3, 900] {
            sink.observe(Metric::DrcItemsPerSweep, v);
        }
        let rep = sink.report().unwrap();
        let (_, buckets) =
            rep.histograms.iter().find(|(l, _)| *l == "drc_items_per_sweep").unwrap();
        let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 5);
        // 2 and 3 share bucket [2, 4) whose inclusive hi is 3.
        assert!(buckets.iter().any(|&(hi, n)| hi == 3 && n == 2));
    }

    #[test]
    fn journal_rollups_and_failure_counts() {
        let sink = Sink::enabled();
        sink.record(AttemptRecord {
            net: 4,
            pass: Pass::First,
            windowed: true,
            escalated: true,
            expansions: 100,
            outcome: AttemptOutcome::Failed(FailureReason::Congested { tile: 9 }),
            victims: vec![],
        });
        sink.record(AttemptRecord {
            net: 4,
            pass: Pass::RipUp,
            windowed: true,
            escalated: false,
            expansions: 50,
            outcome: AttemptOutcome::Routed { f: 10.0, g: 10.0 },
            victims: vec![2, 1, 2],
        });
        sink.record(AttemptRecord {
            net: 7,
            pass: Pass::Retry,
            windowed: true,
            escalated: false,
            expansions: 5,
            outcome: AttemptOutcome::Failed(FailureReason::ViaCapacity { cell: (3, 4) }),
            victims: vec![],
        });
        let rep = sink.report().unwrap();
        let sums = rep.net_summaries();
        assert_eq!(sums.len(), 2);
        let n4 = &sums[0];
        assert_eq!((n4.net, n4.attempts, n4.expansions, n4.escalations), (4, 2, 150, 1));
        assert!(n4.routed);
        assert_eq!(n4.victims, vec![1, 2]);
        let n7 = &sums[1];
        assert!(!n7.routed);
        assert_eq!(n7.last_failure, Some(FailureReason::ViaCapacity { cell: (3, 4) }));
        let fc = rep.failure_counts();
        assert_eq!(fc.iter().find(|(l, _)| *l == "congested").unwrap().1, 1);
        assert_eq!(fc.iter().find(|(l, _)| *l == "via_capacity").unwrap().1, 1);
        assert_eq!(fc.iter().find(|(l, _)| *l == "unreachable").unwrap().1, 0);
    }

    #[test]
    fn spans_record_on_drop_and_directly() {
        let sink = Sink::enabled();
        {
            let _g = sink.span("stage_a");
        }
        sink.record_span("stage_b", 1.5);
        let rep = sink.report().unwrap();
        assert_eq!(rep.spans.len(), 2);
        assert_eq!(rep.spans[0].0, "stage_a");
        assert!((rep.spans[1].1 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sink_is_send_sync_and_cheap_to_clone() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Sink>();
        let sink = Sink::enabled();
        let clone = sink.clone();
        clone.count(Counter::Searches, 1);
        assert_eq!(sink.report().unwrap().counter("searches"), 1);
    }
}
