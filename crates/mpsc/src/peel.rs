//! Multi-layer assignment by iterated MPSC peeling.

use crate::circular::{Chord, MpscError};
use crate::max_planar_subset;

/// Result of peeling chords into planar layers.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerAssignment {
    /// `layers[k]` holds the chord indices assigned to layer `k`.
    pub layers: Vec<Vec<usize>>,
    /// Chords that did not fit in any layer.
    pub unassigned: Vec<usize>,
}

impl LayerAssignment {
    /// Total number of chords assigned to some layer.
    pub fn assigned_count(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Layer of a chord, if assigned.
    pub fn layer_of(&self, chord: usize) -> Option<usize> {
        self.layers.iter().position(|l| l.contains(&chord))
    }
}

/// Repeatedly extracts a maximum-weight planar subset of the remaining
/// chords, one wire layer at a time (§III-B1 runs this per RDL).
///
/// ```
/// use info_mpsc::{peel_layers, Chord};
/// // Two crossing chords need two layers.
/// let chords = [Chord::unit(0, 2), Chord::unit(1, 3)];
/// let asg = peel_layers(4, &chords, 2).unwrap();
/// assert_eq!(asg.layers.len(), 2);
/// assert!(asg.unassigned.is_empty());
/// ```
///
/// # Errors
///
/// Propagates [`MpscError`] from chord validation.
pub fn peel_layers(
    n_points: usize,
    chords: &[Chord],
    max_layers: usize,
) -> Result<LayerAssignment, MpscError> {
    let mut remaining: Vec<usize> = (0..chords.len()).collect();
    let mut layers = Vec::new();
    for _ in 0..max_layers {
        if remaining.is_empty() {
            break;
        }
        let sub: Vec<Chord> = remaining.iter().map(|&i| chords[i]).collect();
        let picked_local = max_planar_subset(n_points, &sub)?;
        if picked_local.is_empty() {
            break;
        }
        let picked: Vec<usize> = picked_local.iter().map(|&k| remaining[k]).collect();
        let picked_set: std::collections::BTreeSet<usize> = picked.iter().copied().collect();
        remaining.retain(|i| !picked_set.contains(i));
        layers.push(picked);
    }
    Ok(LayerAssignment { layers, unassigned: remaining })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circular::chords_cross;

    #[test]
    fn pairwise_crossing_chords_need_one_layer_each() {
        // Three mutually crossing chords on 6 points:
        // (0,3), (1,4), (2,5) pairwise cross (the paper's Fig. 2 pattern).
        let chords = vec![Chord::unit(0, 3), Chord::unit(1, 4), Chord::unit(2, 5)];
        for (i, a) in chords.iter().enumerate() {
            for b in &chords[i + 1..] {
                assert!(chords_cross(a, b));
            }
        }
        let asg = peel_layers(6, &chords, 3).unwrap();
        assert_eq!(asg.layers.len(), 3);
        assert_eq!(asg.assigned_count(), 3);
        assert!(asg.unassigned.is_empty());
        // With only 2 layers one chord is left over.
        let asg2 = peel_layers(6, &chords, 2).unwrap();
        assert_eq!(asg2.assigned_count(), 2);
        assert_eq!(asg2.unassigned.len(), 1);
    }

    #[test]
    fn planar_set_fits_one_layer() {
        let chords = vec![Chord::unit(0, 5), Chord::unit(1, 2), Chord::unit(3, 4)];
        let asg = peel_layers(6, &chords, 4).unwrap();
        assert_eq!(asg.layers.len(), 1);
        assert_eq!(asg.layers[0].len(), 3);
    }

    #[test]
    fn layer_of_lookup() {
        let chords = vec![Chord::unit(0, 2), Chord::unit(1, 3)];
        let asg = peel_layers(4, &chords, 2).unwrap();
        let l0 = asg.layer_of(0).unwrap();
        let l1 = asg.layer_of(1).unwrap();
        assert_ne!(l0, l1);
        assert_eq!(asg.layer_of(99), None);
    }

    #[test]
    fn zero_layers_assigns_nothing() {
        let chords = vec![Chord::unit(0, 1)];
        let asg = peel_layers(2, &chords, 0).unwrap();
        assert!(asg.layers.is_empty());
        assert_eq!(asg.unassigned, vec![0]);
    }

    #[test]
    fn weights_steer_early_layers() {
        // Crossing pair: heavy chord goes to layer 0.
        let chords = vec![Chord::new(0, 2, 0.1), Chord::new(1, 3, 9.0)];
        let asg = peel_layers(4, &chords, 2).unwrap();
        assert_eq!(asg.layers[0], vec![1]);
        assert_eq!(asg.layers[1], vec![0]);
    }
}
