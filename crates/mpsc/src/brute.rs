//! Exhaustive MPSC oracle for testing.

use crate::circular::{chords_cross, Chord};

/// Finds a maximum-weight planar subset by enumerating all 2^|chords|
/// subsets. Exact but exponential — test oracle only.
///
/// # Panics
///
/// Panics if more than 20 chords are supplied.
pub fn brute_force_max_planar(chords: &[Chord]) -> Vec<usize> {
    assert!(chords.len() <= 20, "brute force limited to 20 chords");
    let n = chords.len();
    let mut best_mask = 0usize;
    let mut best_weight = -1.0f64;
    for mask in 0..(1usize << n) {
        let mut ok = true;
        let mut weight = 0.0;
        'pairs: for i in 0..n {
            if mask & (1 << i) == 0 {
                continue;
            }
            weight += chords[i].weight;
            for j in (i + 1)..n {
                if mask & (1 << j) != 0 && chords_cross(&chords[i], &chords[j]) {
                    ok = false;
                    break 'pairs;
                }
            }
        }
        if ok && weight > best_weight {
            best_weight = weight;
            best_mask = mask;
        }
    }
    (0..n).filter(|i| best_mask & (1 << i) != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_planar_subset;
    use rand::{Rng, SeedableRng};

    #[test]
    fn oracle_simple() {
        let chords = vec![Chord::new(0, 2, 1.0), Chord::new(1, 3, 5.0)];
        assert_eq!(brute_force_max_planar(&chords), vec![1]);
    }

    #[test]
    fn dp_matches_brute_force_on_random_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        for trial in 0..300 {
            let n_points = rng.gen_range(2..18);
            let max_chords = (n_points / 2).min(9);
            let n_chords = rng.gen_range(0..=max_chords);
            // Draw disjoint endpoint pairs.
            let mut points: Vec<usize> = (0..n_points).collect();
            for i in (1..points.len()).rev() {
                let j = rng.gen_range(0..=i);
                points.swap(i, j);
            }
            let chords: Vec<Chord> = (0..n_chords)
                .map(|k| {
                    let w = if rng.gen_bool(0.3) {
                        1.0
                    } else {
                        rng.gen_range(0.0..4.0)
                    };
                    Chord::new(points[2 * k], points[2 * k + 1], w)
                })
                .collect();
            let dp = max_planar_subset(n_points, &chords).expect("valid instance");
            let bf = brute_force_max_planar(&chords);
            let w = |sel: &[usize]| -> f64 { sel.iter().map(|&i| chords[i].weight).sum() };
            assert!(
                (w(&dp) - w(&bf)).abs() < 1e-9,
                "trial {trial}: dp weight {} != brute force {} (n={n_points}, chords={chords:?})",
                w(&dp),
                w(&bf)
            );
            // DP selection must itself be planar.
            for (x, &i) in dp.iter().enumerate() {
                for &j in &dp[x + 1..] {
                    assert!(!chords_cross(&chords[i], &chords[j]));
                }
            }
        }
    }
}
