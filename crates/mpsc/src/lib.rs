//! Maximum planar subset of chords (MPSC) on a circular model.
//!
//! Supowit's O(n²) dynamic program \[16\] finds a maximum *cardinality*
//! subset of pairwise non-crossing chords of a circle; the paper's layer
//! assignment (§III-B1) generalizes it to maximum total **weight**, where
//! each chord's weight (Eq. (2)) folds in the detour rate and the
//! congestion overflow rates of the net's pre-routed MST path.
//!
//! The circular model here is abstract: `n` points on a circle labeled
//! `0..n` in boundary order, chords as point pairs. The router crate maps
//! fan-out access points onto these labels.
//!
//! # Example
//!
//! ```
//! use info_mpsc::{Chord, max_planar_subset};
//!
//! // Points 0..6 around the circle; chords (0,3) and (1,2) nest, (4,5) is
//! // disjoint, and (2,4) would cross (0,3)... pick weights so all three
//! // compatible chords win.
//! let chords = vec![
//!     Chord::unit(0, 3),
//!     Chord::unit(1, 2),
//!     Chord::unit(4, 5),
//! ];
//! let picked = max_planar_subset(6, &chords).unwrap();
//! assert_eq!(picked.len(), 3);
//! ```

mod brute;
mod circular;
mod peel;

pub use brute::brute_force_max_planar;
pub use circular::{chords_cross, Chord, MpscError};
pub use peel::{peel_layers, LayerAssignment};

/// Finds a maximum-weight planar (pairwise non-crossing) subset of chords.
///
/// Returns indices into `chords` of the selected subset. Runs Supowit-style
/// interval DP in O(n² + |chords|) time and O(n²) memory, where `n` is the
/// number of circle points.
///
/// # Errors
///
/// [`MpscError`] if a chord endpoint is out of range, degenerate, shared
/// between two chords, or carries a non-finite/negative weight.
pub fn max_planar_subset(n_points: usize, chords: &[Chord]) -> Result<Vec<usize>, MpscError> {
    circular::validate(n_points, chords)?;
    if n_points == 0 || chords.is_empty() {
        return Ok(Vec::new());
    }
    // partner[p] = (other endpoint, chord index) if a chord ends at p.
    let mut partner: Vec<Option<(usize, usize)>> = vec![None; n_points];
    for (ci, c) in chords.iter().enumerate() {
        partner[c.a] = Some((c.b, ci));
        partner[c.b] = Some((c.a, ci));
    }

    let n = n_points;
    // dp[i][j] with j >= i: best weight using chords entirely inside the
    // arc [i, j]. Flattened to save allocations.
    let idx = |i: usize, j: usize| i * n + j;
    let mut dp = vec![0.0f64; n * n];
    // take[i][j]: whether the optimal solution of (i, j) takes the chord at
    // point i.
    let mut take = vec![false; n * n];

    for i in (0..n).rev() {
        for j in i..n {
            // Option 1: skip point i.
            let mut best = if i < j { dp[idx(i + 1, j)] } else { 0.0 };
            let mut took = false;
            // Option 2: take the chord (i, k) if k lies in (i, j].
            if let Some((k, ci)) = partner[i] {
                if k > i && k <= j {
                    let inside = if i + 2 <= k { dp[idx(i + 1, k - 1)] } else { 0.0 };
                    let right = if k < j { dp[idx(k + 1, j)] } else { 0.0 };
                    let cand = chords[ci].weight + inside + right;
                    if cand > best {
                        best = cand;
                        took = true;
                    }
                }
            }
            dp[idx(i, j)] = best;
            take[idx(i, j)] = took;
        }
    }

    // Backtrack.
    let mut picked = Vec::new();
    let mut stack = vec![(0usize, n - 1)];
    while let Some((i, j)) = stack.pop() {
        if i > j || i >= n {
            continue;
        }
        if take[idx(i, j)] {
            let (k, ci) = partner[i].expect("take implies a chord at i");
            picked.push(ci);
            if i + 2 <= k {
                stack.push((i + 1, k - 1));
            }
            if k < j {
                stack.push((k + 1, j));
            }
        } else if i < j {
            stack.push((i + 1, j));
        }
    }
    picked.sort_unstable();
    Ok(picked)
}

/// Unweighted MPSC: maximum cardinality (Supowit's original objective).
///
/// # Errors
///
/// Same as [`max_planar_subset`].
pub fn max_planar_subset_unweighted(
    n_points: usize,
    chords: &[Chord],
) -> Result<Vec<usize>, MpscError> {
    let unit: Vec<Chord> = chords.iter().map(|c| Chord::unit(c.a, c.b)).collect();
    max_planar_subset(n_points, &unit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs() {
        assert!(max_planar_subset(0, &[]).unwrap().is_empty());
        assert!(max_planar_subset(10, &[]).unwrap().is_empty());
    }

    #[test]
    fn single_chord() {
        let picked = max_planar_subset(4, &[Chord::unit(1, 3)]).unwrap();
        assert_eq!(picked, vec![0]);
    }

    #[test]
    fn two_crossing_chords_pick_heavier() {
        // (0,2) and (1,3) cross; weight decides.
        let chords = vec![Chord::new(0, 2, 1.0), Chord::new(1, 3, 5.0)];
        let picked = max_planar_subset(4, &chords).unwrap();
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn nesting_chords_all_selected() {
        let chords = vec![Chord::unit(0, 5), Chord::unit(1, 4), Chord::unit(2, 3)];
        let picked = max_planar_subset(6, &chords).unwrap();
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn figure5_style_capacity_weighting() {
        // Paper Fig. 5: a nesting triple shares one congested channel, so
        // each member gets a heavy overflow penalty (low weight); a
        // crossing pair of uncongested nets should win instead. Chords
        // (0,7), (1,6), (2,5) nest (all would route through the narrow
        // channel); chords (3, 8) and (4, 9) cross all three.
        let congested = 0.2;
        let free = 1.0;
        let chords = [
            Chord::new(0, 7, congested),
            Chord::new(1, 6, congested),
            Chord::new(2, 5, congested),
            Chord::new(3, 8, free),
            Chord::new(4, 9, free),
        ];
        // Sanity: the free chords conflict with the congested triple but
        // not with each other... (3,8) vs (4,9): 4 inside (3,8), 9 outside →
        // they cross each other too; keep only one free chord then.
        assert!(chords_cross(&chords[3], &chords[4]));
        let chords = &chords[..4];
        // Unweighted Supowit picks the cardinality-3 congested triple.
        let unweighted = max_planar_subset_unweighted(10, chords).unwrap();
        assert_eq!(unweighted, vec![0, 1, 2]);
        // Congestion-aware weights (3 × 0.2 = 0.6 < 1.0) flip the choice to
        // the routable single net — the Fig. 5 effect.
        let weighted = max_planar_subset(10, chords).unwrap();
        assert_eq!(weighted, vec![3]);
    }

    #[test]
    fn weighted_beats_cardinality() {
        // Two light chords vs one heavy chord crossing both.
        // (1,2) and (3,4) are planar (weight 1 each); (0,3)... crosses (1,2)?
        // endpoints 0 and 3: 1,2 strictly inside (0,3) → (1,2) nests, no
        // cross. Use (2,5) crossing both (1,3) and (4,6)... check: (2,5) vs
        // (1,3): 2 inside (1,3)? order 1<2<3: yes one endpoint inside, 5
        // outside → cross. (2,5) vs (4,6): 5 inside (4,6), 2 outside → cross.
        let chords = vec![
            Chord::new(1, 3, 1.0),
            Chord::new(4, 6, 1.0),
            Chord::new(2, 5, 3.0),
        ];
        let picked = max_planar_subset(7, &chords).unwrap();
        assert_eq!(picked, vec![2], "heavy chord (weight 3) beats two units");
        // Flip the weights and cardinality wins.
        let chords2 = vec![
            Chord::new(1, 3, 2.0),
            Chord::new(4, 6, 2.0),
            Chord::new(2, 5, 3.0),
        ];
        let picked2 = max_planar_subset(7, &chords2).unwrap();
        assert_eq!(picked2, vec![0, 1]);
    }

    #[test]
    fn unweighted_ignores_weights() {
        let chords = vec![
            Chord::new(1, 3, 0.001),
            Chord::new(4, 6, 0.001),
            Chord::new(2, 5, 100.0),
        ];
        let picked = max_planar_subset_unweighted(7, &chords).unwrap();
        assert_eq!(picked, vec![0, 1]);
    }

    #[test]
    fn result_is_always_planar() {
        let chords = vec![
            Chord::new(0, 4, 2.0),
            Chord::new(1, 5, 2.5),
            Chord::new(2, 6, 2.0),
            Chord::new(3, 7, 1.0),
        ];
        let picked = max_planar_subset(8, &chords).unwrap();
        for (i, &a) in picked.iter().enumerate() {
            for &b in &picked[i + 1..] {
                assert!(!chords_cross(&chords[a], &chords[b]));
            }
        }
    }
}
