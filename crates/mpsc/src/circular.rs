//! Chords on the circular model.

use std::fmt;

/// A chord of the circle connecting two distinct boundary points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chord {
    /// Smaller endpoint label.
    pub a: usize,
    /// Larger endpoint label.
    pub b: usize,
    /// Selection weight (the paper's Eq. (2)); must be finite and
    /// non-negative.
    pub weight: f64,
}

impl Chord {
    /// A chord with explicit weight. Endpoints are normalized so `a < b`.
    pub fn new(a: usize, b: usize, weight: f64) -> Self {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        Chord { a, b, weight }
    }

    /// A unit-weight chord (Supowit's cardinality objective).
    pub fn unit(a: usize, b: usize) -> Self {
        Chord::new(a, b, 1.0)
    }
}

/// Whether two chords cross strictly inside the circle.
///
/// With endpoints normalized (`a < b`), chords `(a, b)` and `(c, d)` cross
/// iff exactly one of `c, d` lies strictly between `a` and `b`. Chords
/// sharing an endpoint do not cross.
pub fn chords_cross(x: &Chord, y: &Chord) -> bool {
    let inside = |p: usize, c: &Chord| p > c.a && p < c.b;
    if x.a == y.a || x.a == y.b || x.b == y.a || x.b == y.b {
        return false;
    }
    inside(y.a, x) != inside(y.b, x)
}

/// Validation failures for a chord set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpscError {
    /// A chord endpoint is ≥ the number of circle points.
    EndpointOutOfRange {
        /// Offending chord index.
        chord: usize,
    },
    /// A chord connects a point to itself.
    DegenerateChord {
        /// Offending chord index.
        chord: usize,
    },
    /// Two chords share a boundary point (each fan-out access point hosts
    /// exactly one net).
    SharedEndpoint {
        /// The shared circle point.
        point: usize,
    },
    /// A weight is negative, NaN, or infinite.
    BadWeight {
        /// Offending chord index.
        chord: usize,
    },
}

impl fmt::Display for MpscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpscError::EndpointOutOfRange { chord } => {
                write!(f, "chord {chord} has an endpoint outside the circle")
            }
            MpscError::DegenerateChord { chord } => write!(f, "chord {chord} is degenerate"),
            MpscError::SharedEndpoint { point } => {
                write!(f, "two chords share circle point {point}")
            }
            MpscError::BadWeight { chord } => write!(f, "chord {chord} has an invalid weight"),
        }
    }
}

impl std::error::Error for MpscError {}

/// Validates a chord set against a circle of `n_points` points.
pub(crate) fn validate(n_points: usize, chords: &[Chord]) -> Result<(), MpscError> {
    let mut seen = vec![false; n_points];
    for (ci, c) in chords.iter().enumerate() {
        if c.a >= n_points || c.b >= n_points {
            return Err(MpscError::EndpointOutOfRange { chord: ci });
        }
        if c.a == c.b {
            return Err(MpscError::DegenerateChord { chord: ci });
        }
        if !c.weight.is_finite() || c.weight < 0.0 {
            return Err(MpscError::BadWeight { chord: ci });
        }
        for p in [c.a, c.b] {
            if seen[p] {
                return Err(MpscError::SharedEndpoint { point: p });
            }
            seen[p] = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_predicate() {
        assert!(chords_cross(&Chord::unit(0, 2), &Chord::unit(1, 3)));
        assert!(!chords_cross(&Chord::unit(0, 3), &Chord::unit(1, 2))); // nested
        assert!(!chords_cross(&Chord::unit(0, 1), &Chord::unit(2, 3))); // disjoint
        assert!(!chords_cross(&Chord::unit(0, 2), &Chord::unit(2, 4))); // shared pt
        // Symmetry.
        assert!(chords_cross(&Chord::unit(1, 3), &Chord::unit(0, 2)));
    }

    #[test]
    fn normalization() {
        let c = Chord::new(7, 2, 1.5);
        assert_eq!((c.a, c.b), (2, 7));
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            validate(3, &[Chord::unit(0, 5)]),
            Err(MpscError::EndpointOutOfRange { chord: 0 })
        );
        assert_eq!(
            validate(3, &[Chord::unit(1, 1)]),
            Err(MpscError::DegenerateChord { chord: 0 })
        );
        assert_eq!(
            validate(5, &[Chord::unit(0, 2), Chord::unit(2, 4)]),
            Err(MpscError::SharedEndpoint { point: 2 })
        );
        assert_eq!(
            validate(4, &[Chord::new(0, 1, f64::NAN)]),
            Err(MpscError::BadWeight { chord: 0 })
        );
        assert_eq!(
            validate(4, &[Chord::new(0, 1, -1.0)]),
            Err(MpscError::BadWeight { chord: 0 })
        );
        assert!(validate(4, &[Chord::unit(0, 2), Chord::unit(1, 3)]).is_ok());
    }
}
