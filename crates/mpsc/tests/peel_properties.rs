//! Property tests for multi-layer peeling.

use info_mpsc::{chords_cross, max_planar_subset, peel_layers, Chord};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn random_chords(seed: u64, n_points: usize) -> Vec<Chord> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut points: Vec<usize> = (0..n_points).collect();
    for i in (1..points.len()).rev() {
        let j = rng.gen_range(0..=i);
        points.swap(i, j);
    }
    points
        .chunks(2)
        .filter(|c| c.len() == 2)
        .map(|c| Chord::new(c[0], c[1], rng.gen_range(0.1..5.0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every layer produced by peeling is itself planar, layers are
    /// disjoint, and with enough layers everything gets assigned.
    #[test]
    fn peeling_invariants(seed in 0u64..10_000, n_points in 4usize..40) {
        let chords = random_chords(seed, n_points);
        let max_layers = chords.len().max(1);
        let asg = peel_layers(n_points, &chords, max_layers).expect("valid instance");
        // Disjoint cover.
        let mut seen = std::collections::BTreeSet::new();
        for layer in &asg.layers {
            for &c in layer {
                prop_assert!(seen.insert(c), "chord {c} assigned twice");
            }
        }
        prop_assert_eq!(seen.len() + asg.unassigned.len(), chords.len());
        // With one layer per chord available, nothing is left over.
        prop_assert!(asg.unassigned.is_empty(), "{:?}", asg);
        // Planarity per layer.
        for layer in &asg.layers {
            for (i, &a) in layer.iter().enumerate() {
                for &b in &layer[i + 1..] {
                    prop_assert!(!chords_cross(&chords[a], &chords[b]));
                }
            }
        }
        // Greedy property: the first layer carries at least as much weight
        // as any later one.
        let weight = |ids: &Vec<usize>| ids.iter().map(|&i| chords[i].weight).sum::<f64>();
        for w in asg.layers.windows(2) {
            prop_assert!(weight(&w[0]) >= weight(&w[1]) - 1e-9);
        }
    }

    /// The DP solution's weight is never below any single-chord weight and
    /// never above the total weight.
    #[test]
    fn dp_weight_bounds(seed in 0u64..10_000, n_points in 2usize..30) {
        let chords = random_chords(seed, n_points);
        if chords.is_empty() {
            return Ok(());
        }
        let picked = max_planar_subset(n_points, &chords).expect("valid");
        let w: f64 = picked.iter().map(|&i| chords[i].weight).sum();
        let max_single = chords.iter().map(|c| c.weight).fold(0.0f64, f64::max);
        let total: f64 = chords.iter().map(|c| c.weight).sum();
        prop_assert!(w + 1e-9 >= max_single, "solution ({w}) beats any single chord");
        prop_assert!(w <= total + 1e-9);
    }
}
