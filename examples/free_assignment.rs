//! Free-assignment routing: I/O pads without pre-assigned partners get a
//! bump pad chosen by min-cost max-flow, then everything routes through
//! the ordinary five-stage flow.
//!
//! ```sh
//! cargo run --release --example free_assignment
//! ```

use info_rdl::geom::{Point, Rect};
use info_rdl::model::{DesignRules, PackageBuilder};
use info_rdl::router::free_assign::route_with_free_pads;
use info_rdl::RouterConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_600_000, 1_000_000)),
        DesignRules::default(),
        2,
    );
    let chip = b.add_chip(Rect::new(Point::new(150_000, 250_000), Point::new(600_000, 750_000)));

    // Two pre-assigned nets...
    let p0 = b.add_io_pad(chip, Point::new(580_000, 300_000))?;
    let g0 = b.add_bump_pad(Point::new(900_000, 300_000))?;
    b.add_net(p0, g0)?;
    let p1 = b.add_io_pad(chip, Point::new(580_000, 700_000))?;
    let g1 = b.add_bump_pad(Point::new(900_000, 700_000))?;
    b.add_net(p1, g1)?;

    // ...five FA pads, and a BGA field of candidate bumps.
    let fa: Vec<_> = (0..5)
        .map(|i| b.add_io_pad(chip, Point::new(580_000, 380_000 + 70_000 * i)))
        .collect::<Result<_, _>>()?;
    for gy in 0..5i64 {
        for gx in 0..3i64 {
            b.add_bump_pad(Point::new(1_000_000 + 150_000 * gx, 200_000 + 150_000 * gy))?;
        }
    }
    let package = b.build()?;

    let (augmented, assignment, outcome) =
        route_with_free_pads(&package, &fa, RouterConfig::default().with_global_cells(16));

    println!("assigned {} FA pads ({} stranded):", assignment.pairs.len(), assignment.unassigned.len());
    for (io, bump) in &assignment.pairs {
        let a = augmented.pad(*io).center;
        let z = augmented.pad(*bump).center;
        println!("  {io} {a} -> {bump} {z}");
    }
    println!("routing: {}", outcome.stats);
    Ok(())
}
