//! Inspect the preprocessing congestion model (Eq. (1)): fan-out grids,
//! MST edges with capacities and demands, and the per-net chord weights
//! (Eq. (2)) that drive layer assignment.
//!
//! ```sh
//! cargo run --release --example congestion_map
//! ```

use info_rdl::generators::patterns::congested_channel;
use info_rdl::router::preprocess::preprocess;
use info_rdl::router::FlowCtx;
use info_rdl::RouterConfig;

fn main() {
    let pkg = congested_channel(8, 4, 1);
    let cfg = RouterConfig::default();
    let pre = match preprocess(&pkg, &cfg, &FlowCtx::default()) {
        Ok(pre) => pre,
        Err(e) => {
            eprintln!("congestion_map: preprocess failed: {e}");
            std::process::exit(1);
        }
    };

    println!("fan-out grids ({}):", pre.grids.len());
    for (i, g) in pre.grids.iter().enumerate() {
        println!(
            "  grid{i}: ({}, {}) .. ({}, {})  [{} x {} µm]",
            g.lo.x,
            g.lo.y,
            g.hi.x,
            g.hi.y,
            g.width() / 1_000,
            g.height() / 1_000
        );
    }

    println!("\nMST edges (capacity vs demand, Eq. (1) overflow):");
    for (i, e) in pre.mst.iter().enumerate() {
        let cap = pre.capacities[i];
        let dem = pre.demands[i];
        let overflow = if dem > cap { dem / cap } else { 0.0 };
        println!(
            "  grid{} -- grid{}: cap {:.1}, dem {:.0}, overflow {:.2}{}",
            e.a,
            e.b,
            cap,
            dem,
            overflow,
            if overflow > 0.0 { "  <-- congested" } else { "" }
        );
    }

    println!("\nchord weights (Eq. (2), alpha/beta/gamma/delta = 0.1/1/1/2):");
    for c in &pre.candidates {
        println!(
            "  {}: detour {:.2}, f_max {:.2}, f_avg {:.2} -> weight {:.3}",
            c.net,
            c.detour_rate,
            c.f_max,
            c.f_avg,
            c.weight(&cfg)
        );
    }
}
