//! Serialize a generated benchmark to the plain-text netlist format,
//! parse it back, route both, and confirm identical statistics — the
//! workflow for sharing benchmark circuits between tools.
//!
//! ```sh
//! cargo run --release --example netlist_roundtrip
//! ```

use info_rdl::model::{parse_package, write_package};
use info_rdl::{InfoRouter, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = info_rdl::generators::dense(1);
    let text = write_package(&original);
    std::fs::write("dense1.netlist", &text)?;
    println!("wrote dense1.netlist ({} bytes, {} lines)", text.len(), text.lines().count());

    let parsed = parse_package(&text)?;
    assert_eq!(original.nets().len(), parsed.nets().len());
    assert_eq!(original.io_pad_count(), parsed.io_pad_count());

    let cfg = RouterConfig::default().with_global_cells(16);
    let a = InfoRouter::new(cfg).route(&original);
    let b = InfoRouter::new(cfg).route(&parsed);
    println!("original: {}", a.stats);
    println!("reparsed: {}", b.stats);
    assert_eq!(a.stats.routed_nets, b.stats.routed_nets, "routing must be reproducible");
    println!("roundtrip OK");
    Ok(())
}
