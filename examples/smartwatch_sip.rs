//! A smartwatch-class system-in-package: the kind of heterogeneous
//! integration the paper's introduction motivates (SoC + PMIC + sensor
//! hub on one InFO package), with chips of different technology nodes and
//! hence *irregular* pad structures.
//!
//! The SoC uses a tight pad pitch; the PMIC (older node) uses a coarse,
//! jittered pitch; the sensor hub scatters pads at arbitrary positions.
//! The router must handle all of them plus chip-to-board nets.
//!
//! ```sh
//! cargo run --release --example smartwatch_sip
//! ```

use info_rdl::geom::{Point, Rect};
use info_rdl::model::{svg, DesignRules, PackageBuilder};
use info_rdl::{InfoRouter, LinExtRouter, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(3_000_000, 2_200_000)),
        DesignRules::default(),
        3,
    );
    // Application SoC (advanced node, fine pitch).
    let soc = b.add_chip(Rect::new(Point::new(200_000, 600_000), Point::new(1_300_000, 1_800_000)));
    // PMIC (mature node, coarse pitch).
    let pmic = b.add_chip(Rect::new(Point::new(1_800_000, 1_300_000), Point::new(2_700_000, 1_950_000)));
    // Sensor hub (irregular scatter).
    let hub = b.add_chip(Rect::new(Point::new(1_800_000, 250_000), Point::new(2_700_000, 900_000)));

    // SoC east-edge pads at 40 µm pitch.
    let mut soc_pads = Vec::new();
    for i in 0..12i64 {
        soc_pads.push(b.add_io_pad(soc, Point::new(1_280_000, 700_000 + 40_000 * i))?);
    }
    // PMIC west-edge pads at ~90 µm pitch with jitter (older node).
    let mut pmic_pads = Vec::new();
    for i in 0..5i64 {
        let jitter = (i * 13) % 29 * 1_000;
        pmic_pads.push(b.add_io_pad(pmic, Point::new(1_820_000, 1_380_000 + 90_000 * i + jitter))?);
    }
    // Sensor hub pads scattered at arbitrary interior-ish positions near
    // its west edge.
    let hub_positions = [
        (1_822_000, 330_000),
        (1_835_000, 465_000),
        (1_821_000, 610_000),
        (1_840_000, 740_000),
        (1_823_000, 860_000),
    ];
    let mut hub_pads = Vec::new();
    for (x, y) in hub_positions {
        hub_pads.push(b.add_io_pad(hub, Point::new(x, y))?);
    }

    // Inter-chip buses: SoC↔PMIC (power telemetry) and SoC↔hub (sensor
    // data), deliberately interleaved so some nets entangle.
    for i in 0..5usize {
        b.add_net(soc_pads[i], pmic_pads[4 - i])?;
    }
    for (i, &hp) in hub_pads.iter().enumerate() {
        b.add_net(soc_pads[5 + i], hp)?;
    }
    // Two chip-to-board nets from the SoC's remaining pads.
    let bump_a = b.add_bump_pad(Point::new(600_000, 250_000))?;
    let bump_b = b.add_bump_pad(Point::new(900_000, 250_000))?;
    b.add_net(soc_pads[10], bump_a)?;
    b.add_net(soc_pads[11], bump_b)?;

    let package = b.build()?;
    println!(
        "smartwatch SiP: {} chips, {} I/O pads, {} nets, {} wire layers",
        package.chips().len(),
        package.io_pad_count(),
        package.nets().len(),
        package.wire_layer_count()
    );

    let ours = InfoRouter::new(RouterConfig::default()).route(&package);
    println!("via-based router: {}", ours.stats);

    let baseline = LinExtRouter::new(RouterConfig::default()).route(&package);
    println!("Lin-ext baseline: {}", baseline.stats);

    std::fs::write("smartwatch_sip.svg", svg::render(&package, Some(&ours.layout)))?;
    println!("wrote smartwatch_sip.svg");
    Ok(())
}
