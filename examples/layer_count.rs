//! The Fig. 2 story as a runnable example: entangled nets need one RDL
//! each without flexible vias, but weave through two RDLs with them.
//!
//! ```sh
//! cargo run --release --example layer_count
//! ```

use info_rdl::generators::patterns::entangled;
use info_rdl::{InfoRouter, LinExtRouter, RouterConfig};

fn main() {
    let k = 3;
    println!("three entangled inter-chip nets (the paper's Fig. 2 pattern)\n");
    for layers in 1..=k + 1 {
        let pkg = entangled(k, layers);
        let cfg = RouterConfig::default().with_global_cells(16);
        let ours = InfoRouter::new(cfg).route(&pkg);
        let base = LinExtRouter::new(cfg).route(&pkg);
        println!(
            "{layers} wire layer(s): ours {:>5.1}% ({} vias) | no-via baseline {:>5.1}%",
            ours.stats.routability_pct,
            ours.stats.via_count,
            base.stats.routability_pct,
        );
    }
    println!("\nexpected: the baseline needs {k} layers; the via-based router needs 2.");
}
