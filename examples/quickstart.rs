//! Quickstart: build a tiny two-chip package, route it, print the report,
//! and dump an SVG of the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use info_rdl::geom::{Point, Rect};
use info_rdl::model::{svg, DesignRules, PackageBuilder};
use info_rdl::{InfoRouter, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1.4 mm × 0.9 mm die holding two chips with facing peripheral pads
    // plus one chip-to-board net.
    let mut b = PackageBuilder::new(
        Rect::new(Point::new(0, 0), Point::new(1_400_000, 900_000)),
        DesignRules::default(),
        2,
    );
    let left = b.add_chip(Rect::new(Point::new(150_000, 250_000), Point::new(500_000, 650_000)));
    let right = b.add_chip(Rect::new(Point::new(900_000, 250_000), Point::new(1_250_000, 650_000)));

    for i in 0..4i64 {
        let y = 320_000 + 80_000 * i;
        let a = b.add_io_pad(left, Point::new(480_000, y))?;
        let z = b.add_io_pad(right, Point::new(920_000, y))?;
        b.add_net(a, z)?;
    }
    let io = b.add_io_pad(left, Point::new(480_000, 620_000))?;
    let bump = b.add_bump_pad(Point::new(700_000, 120_000))?;
    b.add_net(io, bump)?;
    let package = b.build()?;

    let outcome = InfoRouter::new(RouterConfig::default()).route(&package);
    println!("routing result: {}", outcome.stats);
    println!(
        "  stage timings: preprocess {:?}, concurrent {:?}, sequential {:?}, LP {:?}",
        outcome.timings.preprocess,
        outcome.timings.concurrent,
        outcome.timings.sequential,
        outcome.timings.lp
    );
    if let Some(lp) = &outcome.lp_final {
        println!(
            "  LP optimization: {:.0} µm -> {:.0} µm in {} iteration(s)",
            lp.wirelength_before / 1_000.0,
            lp.wirelength_after / 1_000.0,
            lp.iterations
        );
    }
    for v in outcome.drc.violations() {
        println!("  violation: {v}");
    }

    let doc = svg::render(&package, Some(&outcome.layout));
    std::fs::write("quickstart.svg", doc)?;
    println!("wrote quickstart.svg");
    Ok(())
}
